#!/usr/bin/env python
"""Load generator and chaos harness for ``repro serve``.

Two modes over the same asyncio client:

* **Load** (default): drive ``--requests N`` small simulation jobs at a
  fixed concurrency budget against a server this script spawns (or an
  existing one via ``--host/--port``), measure submit latency and
  end-to-end job wall percentiles plus completed-job throughput, and
  merge the numbers into a trajectory artifact (``--bench-out
  BENCH_5.json``) under a ``serve`` section.

* **Chaos** (``--chaos``): same load, but the server is ``kill -9``-ed
  once ~30% of the jobs have finished, then restarted on the same port
  and state directory — with span tracing on. The harness then proves
  the crash-safety contract end to end: every acknowledged job reaches
  ``done`` (zero lost), resubmitting every job id returns the already
  finished envelope unchanged (zero duplicated), the server drains
  cleanly, and the trace the restarted instance wrote passes ``repro
  inspect --check``.

* **Telemetry** (``--telemetry``, composes with load): after the load,
  submit one deliberately long job, tail its ``/v1/jobs/<id>/events``
  SSE stream live, and measure first-event latency plus the cadence of
  mid-run progress snapshots. The probe asserts the streaming contract
  — at least one ``progress`` event and the terminal ``state`` event
  arrive on the stream *before* the envelope is fetched — validates the
  captured events against the ``repro.progress/v1`` schema, and scrapes
  ``/metrics`` through the strict Prometheus parser (native ``_bucket``
  histogram series included). Numbers land in a ``telemetry`` section
  of the BENCH artifact.

Jobs reuse a small pool of distinct run specs (``--distinct``), so the
content-addressed results journal turns most executions into replays —
which is exactly the deployment story: many clients asking overlapping
questions, one simulation per distinct question.

Usage::

    PYTHONPATH=src python scripts/serve_load.py --requests 1000
    PYTHONPATH=src python scripts/serve_load.py --chaos --requests 60
    PYTHONPATH=src python scripts/serve_load.py --requests 1000 \
        --bench-out BENCH_5.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# minimal asyncio HTTP/JSON client (Connection: close per request)


class ServerGone(RuntimeError):
    """The server refused or dropped the connection (mid-chaos)."""


async def http_json(host: str, port: int, method: str, path: str,
                    doc=None, timeout: float = 60.0):
    """One HTTP/JSON exchange; returns ``(status, decoded_body)``."""
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as error:
        raise ServerGone(f"connect {host}:{port}: {error}") from None
    try:
        body = json.dumps(doc).encode() if doc is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    except (OSError, asyncio.IncompleteReadError) as error:
        raise ServerGone(f"{method} {path}: {error}") from None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    if not raw:
        raise ServerGone(f"{method} {path}: empty response")
    try:
        status = int(raw.split(b" ", 2)[1])
        payload = raw.split(b"\r\n\r\n", 1)[1]
        return status, json.loads(payload or b"null")
    except (IndexError, ValueError) as error:
        raise ServerGone(f"{method} {path}: bad response: {error}") from None


# ----------------------------------------------------------------------
# server management


def free_port() -> int:
    """A port the OS just handed out (both instances reuse it)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_server(port: int, state_dir: str, executors: int,
                 queue_limit: int, trace_out: str | None = None,
                 progress_every_ms: int | None = None):
    """Start ``repro serve`` and wait for its listening line."""
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--port", str(port),
        "--state-dir", state_dir,
        "--executors", str(executors),
        "--queue-limit", str(queue_limit),
    ]
    if trace_out:
        argv += ["--trace-out", trace_out]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    if progress_every_ms is not None:
        env["REPRO_PROGRESS_EVERY_MS"] = str(progress_every_ms)
    proc = subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    deadline = time.time() + 60
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited during startup (rc={proc.poll()})"
            )
        if "listening on" in line:
            return proc
    raise SystemExit("server never reported its listening address")


# ----------------------------------------------------------------------
# load


def job_payload(index: int, distinct: int, tenants: int) -> dict:
    """One small job; specs repeat every ``distinct`` jobs (dedupe)."""
    return {
        "id": f"load-{index}",
        "tenant": f"tenant-{index % max(1, tenants)}",
        "runs": [{
            "app": "BFS",
            "policy": "pcc",
            "graph_scale": 8,
            "proxy_accesses": 2000,
            "seed": index % max(1, distinct),
        }],
    }


async def drive_job(host, port_ref, index, args, stats, semaphore):
    """Submit one job (retrying 429/holes), then poll it to terminal."""
    async with semaphore:
        payload = job_payload(index, args.distinct, args.tenants)
        submitted = None
        begun = time.monotonic()
        while True:
            try:
                t0 = time.monotonic()
                status, doc = await http_json(
                    host, port_ref[0], "POST", "/v1/jobs", payload
                )
            except ServerGone:
                await asyncio.sleep(0.2)
                continue
            if status in (202, 200):
                stats["submit_ms"].append((time.monotonic() - t0) * 1e3)
                submitted = time.monotonic()
                break
            if status == 429:
                stats["rejected_429"] += 1
                await asyncio.sleep(min(2.0, float(
                    doc.get("retry_after_s") or 1)))
                continue
            if status == 503:
                stats["rejected_503"] += 1
                await asyncio.sleep(0.3)
                continue
            raise SystemExit(f"unexpected submit status {status}: {doc}")
        while True:
            try:
                status, doc = await http_json(
                    host, port_ref[0], "GET", f"/v1/jobs/load-{index}"
                )
            except ServerGone:
                await asyncio.sleep(0.2)
                continue
            if status == 404:
                # the 202 predates a crash the journal absorbed; the
                # restarted server must re-learn it from our resubmit
                stats["resubmitted"] += 1
                return await _resubmit(host, port_ref, index, args, stats,
                                       begun)
            state = doc["job"]["state"]
            if state in ("done", "failed", "expired"):
                stats["states"][state] = stats["states"].get(state, 0) + 1
                stats["job_wall_ms"].append(
                    (time.monotonic() - submitted) * 1e3)
                if doc["degraded"]:
                    stats["degraded_jobs"] += 1
                return state
            await asyncio.sleep(args.poll_interval)


async def _resubmit(host, port_ref, index, args, stats, begun):
    payload = job_payload(index, args.distinct, args.tenants)
    while True:
        try:
            status, doc = await http_json(
                host, port_ref[0], "POST", "/v1/jobs", payload
            )
        except ServerGone:
            await asyncio.sleep(0.2)
            continue
        if status in (200, 202):
            break
        await asyncio.sleep(0.3)
    while True:
        try:
            status, doc = await http_json(
                host, port_ref[0], "GET", f"/v1/jobs/load-{index}"
            )
        except ServerGone:
            await asyncio.sleep(0.2)
            continue
        if status == 200 and doc["job"]["state"] in ("done", "failed",
                                                     "expired"):
            state = doc["job"]["state"]
            stats["states"][state] = stats["states"].get(state, 0) + 1
            stats["job_wall_ms"].append((time.monotonic() - begun) * 1e3)
            return state
        await asyncio.sleep(args.poll_interval)


def percentile(values, q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def summarize(values) -> dict:
    return {
        "p50_ms": round(percentile(values, 0.50), 2),
        "p90_ms": round(percentile(values, 0.90), 2),
        "p99_ms": round(percentile(values, 0.99), 2),
        "max_ms": round(max(values), 2) if values else 0.0,
    }


async def run_load(args, host, port_ref, stats, chaos_hook=None):
    semaphore = asyncio.Semaphore(args.concurrency)
    begun = time.monotonic()
    tasks = [
        asyncio.ensure_future(
            drive_job(host, port_ref, index, args, stats, semaphore))
        for index in range(args.requests)
    ]
    if chaos_hook is not None:
        tasks.append(asyncio.ensure_future(chaos_hook()))
    results = await asyncio.gather(*tasks)
    stats["wall_s"] = time.monotonic() - begun
    return results


# ----------------------------------------------------------------------
# chaos


async def chaos_controller(args, host, port_ref, stats, server_box,
                           state_dir, trace_out):
    """Kill -9 at ~30% completion, restart on the same port, tracing."""
    target = max(1, int(args.requests * 0.3))
    while True:
        done = sum(stats["states"].values())
        if done >= target:
            break
        await asyncio.sleep(0.1)
    proc = server_box[0]
    print(f"chaos: {sum(stats['states'].values())}/{args.requests} done; "
          f"kill -9 pid {proc.pid}", flush=True)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()
    stats["killed_at"] = sum(stats["states"].values())
    await asyncio.sleep(0.5)
    server_box[0] = spawn_server(
        port_ref[0], state_dir, args.executors, args.queue_limit,
        trace_out=trace_out, progress_every_ms=args.progress_every_ms,
    )
    print("chaos: server restarted (tracing on)", flush=True)


async def assert_no_duplicates(args, host, port_ref, sample: int = 0):
    """Resubmitting every finished id must return it unchanged."""
    count = sample or args.requests
    duplicated = 0
    for index in range(count):
        status, before = await http_json(
            host, port_ref[0], "GET", f"/v1/jobs/load-{index}")
        payload = job_payload(index, args.distinct, args.tenants)
        status, resubmit = await http_json(
            host, port_ref[0], "POST", "/v1/jobs", payload)
        if status != 200:
            duplicated += 1
            continue
        if (resubmit["job"]["state"] != before["job"]["state"]
                or resubmit["job"]["finished_ms"]
                != before["job"]["finished_ms"]):
            duplicated += 1
    return duplicated


# ----------------------------------------------------------------------
# telemetry probe (SSE streaming + Prometheus exposition)


def telemetry_probe(args, host: str, port: int) -> tuple[dict, int]:
    """Tail one live job's SSE stream and scrape ``/metrics``.

    Returns ``(section, status)`` — the BENCH ``telemetry`` section and
    a non-zero status if any streaming-contract assertion failed.
    """
    import http.client
    import threading

    sys.path.insert(0, str(REPO / "src"))
    from repro.metrics.prometheus import parse_exposition
    from repro.obs import inspect as inspect_module
    from repro.serve.events import TERMINAL_STATES, read_events

    status = 0
    job_id = "telem-0"
    payload = {
        "id": job_id,
        "tenant": "telemetry",
        "runs": [{
            "app": "BFS",
            "policy": "pcc",
            "graph_scale": 8,
            # long enough to cross several progress cadences, and a
            # spec the load phase never submits, so the results journal
            # cannot short-circuit it into a no-progress replay
            "proxy_accesses": 200_000,
            "seed": int(time.time()) % 100_000,
        }],
    }

    events: list[tuple[float, dict]] = []
    stream_error: list[str] = []

    def tail() -> None:
        conn = http.client.HTTPConnection(host, port, timeout=180)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                stream_error.append(f"SSE stream: HTTP {response.status}")
                return
            for event in read_events(response):
                events.append((time.monotonic(), event))
                data = event.get("data", {})
                if (event.get("event") == "state"
                        and data.get("state") in TERMINAL_STATES):
                    return
            stream_error.append("SSE stream closed before a terminal state")
        except OSError as error:
            stream_error.append(f"SSE stream: {error}")
        finally:
            conn.close()

    async def submit() -> float:
        while True:
            code, doc = await http_json(host, port, "POST", "/v1/jobs",
                                        payload)
            if code == 202:
                return time.monotonic()
            if code in (429, 503):
                await asyncio.sleep(0.3)
                continue
            raise SystemExit(f"telemetry submit: HTTP {code}: {doc}")

    submitted = asyncio.run(submit())
    tailer = threading.Thread(target=tail, daemon=True)
    tailer.start()
    tailer.join(timeout=180)

    # the stream delivered everything (or died) before this envelope
    # fetch — the ordering the acceptance criterion pins
    code, envelope = asyncio.run(
        http_json(host, port, "GET", f"/v1/jobs/{job_id}"))

    progress_times = [t for t, e in events if e.get("event") == "progress"]
    terminal = next(
        (e.get("data", {}).get("state") for _, e in events
         if e.get("event") == "state"
         and e.get("data", {}).get("state") in TERMINAL_STATES),
        None,
    )
    for problem in stream_error:
        print(f"telemetry FAILED: {problem}", file=sys.stderr)
        status = 1
    if not events:
        print("telemetry FAILED: no SSE events at all", file=sys.stderr)
        status = 1
    if not progress_times:
        print("telemetry FAILED: no mid-run progress events on the stream",
              file=sys.stderr)
        status = 1
    if terminal is None:
        print("telemetry FAILED: no terminal state event on the stream",
              file=sys.stderr)
        status = 1
    elif terminal != envelope.get("job", {}).get("state"):
        print(f"telemetry FAILED: stream said {terminal!r} but the envelope "
              f"says {envelope.get('job', {}).get('state')!r}",
              file=sys.stderr)
        status = 1

    schema_errors = inspect_module.validate_events(
        {"events": [e for _, e in events]})
    if schema_errors:
        for problem in schema_errors[:5]:
            print(f"telemetry FAILED: event schema: {problem}",
                  file=sys.stderr)
        status = 1

    gaps = [
        round((b - a) * 1e3, 1)
        for a, b in zip(progress_times, progress_times[1:])
    ]
    first_event_ms = (
        round((events[0][0] - submitted) * 1e3, 1) if events else None)
    first_progress_ms = (
        round((progress_times[0] - submitted) * 1e3, 1)
        if progress_times else None)

    # scrape the native exposition through the strict parser
    families = {}
    try:
        code, text = asyncio.run(_http_text(host, port, "/metrics"))
        if code != 200:
            raise ValueError(f"HTTP {code}")
        families = parse_exposition(text)
    except (ServerGone, ValueError) as error:
        print(f"telemetry FAILED: /metrics scrape: {error}", file=sys.stderr)
        status = 1
    histogram_families = [
        name for name, family in families.items()
        if family.get("type") == "histogram"
    ]
    if families and not histogram_families:
        print("telemetry FAILED: /metrics has no histogram (_bucket) family",
              file=sys.stderr)
        status = 1

    section = {
        "benchmark": "SSE stream of one 200k-access job + /metrics scrape",
        "sse_events": len(events),
        "progress_events": len(progress_times),
        "terminal_state": terminal,
        "first_event_ms": first_event_ms,
        "first_progress_ms": first_progress_ms,
        "progress_cadence_ms": {
            "p50": percentile(gaps, 0.50), "max": max(gaps, default=0.0),
        },
        "metrics_families": len(families),
        "metrics_histograms": len(histogram_families),
        "event_schema_errors": len(schema_errors),
    }
    print(
        f"telemetry: {len(events)} events ({len(progress_times)} progress), "
        f"first event {first_event_ms}ms, first progress "
        f"{first_progress_ms}ms, terminal {terminal}; /metrics: "
        f"{len(families)} families, {len(histogram_families)} histograms"
    )
    return section, status


async def _http_text(host: str, port: int, path: str,
                     timeout: float = 30.0) -> tuple[int, str]:
    """One GET returning the raw body as text (for ``/metrics``)."""
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as error:
        raise ServerGone(f"connect {host}:{port}: {error}") from None
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    except OSError as error:
        raise ServerGone(f"GET {path}: {error}") from None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), body.decode("utf-8", "replace")


# ----------------------------------------------------------------------
# artifact


def write_bench(args, sections: dict) -> None:
    out = Path(args.bench_out)
    artifact = {}
    if out.exists():
        try:
            artifact = json.loads(out.read_text())
        except ValueError:
            artifact = {"note": "previous artifact was unreadable"}
    artifact.update(sections)
    out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"serve bench section(s) {sorted(sections)} -> {out}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--requests", type=int, default=1000,
                        help="jobs to drive (default 1000)")
    parser.add_argument("--concurrency", type=int, default=128,
                        help="concurrent in-flight jobs (default 128)")
    parser.add_argument("--distinct", type=int, default=32,
                        help="distinct run specs across the job stream "
                        "(smaller = more journal dedupe; default 32)")
    parser.add_argument("--tenants", type=int, default=8,
                        help="tenants to spread jobs over (default 8)")
    parser.add_argument("--executors", type=int, default=4,
                        help="server executor slots (default 4)")
    parser.add_argument("--queue-limit", type=int, default=4096,
                        help="server queue ceiling (default 4096)")
    parser.add_argument("--poll-interval", type=float, default=0.05,
                        help="seconds between job polls (default 0.05)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="drive an already-running server instead of "
                        "spawning one")
    parser.add_argument("--state-dir", default=None,
                        help="state directory for the spawned server "
                        "(default: a fresh temp dir)")
    parser.add_argument("--chaos", action="store_true",
                        help="kill -9 the server at ~30%% completion, "
                        "restart it, and verify zero lost/duplicated jobs "
                        "plus a clean inspected trace")
    parser.add_argument("--telemetry", action="store_true",
                        help="after the load, tail one live job's SSE "
                        "stream (first-event latency, progress cadence) "
                        "and scrape /metrics through the strict parser")
    parser.add_argument("--progress-every-ms", type=int, default=None,
                        help="progress snapshot cadence for the spawned "
                        "server (default: 100 with --telemetry, else the "
                        "server default)")
    parser.add_argument("--bench-out", metavar="FILE", default=None,
                        help="merge 'serve' (and 'telemetry') sections "
                        "into this BENCH artifact (e.g. BENCH_6.json)")
    args = parser.parse_args()
    if args.progress_every_ms is None and args.telemetry:
        args.progress_every_ms = 100

    stats = {
        "submit_ms": [], "job_wall_ms": [], "states": {},
        "rejected_429": 0, "rejected_503": 0, "resubmitted": 0,
        "degraded_jobs": 0,
    }
    host = args.host
    external = args.port is not None
    port = args.port if external else free_port()
    port_ref = [port]
    state_dir = args.state_dir or tempfile.mkdtemp(prefix="repro-serve-load-")
    trace_out = str(Path(state_dir) / "serve-trace.json")
    server_box = [None]
    if not external:
        # the first instance runs untraced; in chaos mode the restarted
        # instance traces, and its trace is what inspect --check gates
        server_box[0] = spawn_server(
            port, state_dir, args.executors, args.queue_limit,
            progress_every_ms=args.progress_every_ms,
        )

    async def drive():
        chaos_hook = None
        if args.chaos:
            if external:
                raise SystemExit("--chaos needs a script-managed server")

            def hook():
                return chaos_controller(args, host, port_ref, stats,
                                        server_box, state_dir, trace_out)
            chaos_hook = hook
        await run_load(args, host, port_ref, stats, chaos_hook=chaos_hook)
        duplicated = None
        if args.chaos:
            duplicated = await assert_no_duplicates(args, host, port_ref)
        metrics = None
        try:
            _, metrics = await http_json(host, port_ref[0], "GET",
                                         "/v1/metrics")
        except ServerGone:
            pass
        return duplicated, metrics

    duplicated, metrics = asyncio.run(drive())

    # the telemetry probe needs the server still up (it runs its own
    # event loops + a blocking SSE tail thread), so it goes between the
    # load and the drain
    telemetry_section = None
    telemetry_status = 0
    if args.telemetry:
        telemetry_section, telemetry_status = telemetry_probe(
            args, host, port_ref[0])

    if not external:
        async def drain():
            try:
                await http_json(host, port_ref[0], "POST", "/v1/drain")
            except ServerGone:
                pass
        asyncio.run(drain())

    if server_box[0] is not None:
        try:
            server_box[0].wait(timeout=60)
        except subprocess.TimeoutExpired:
            server_box[0].kill()
            raise SystemExit("server failed to drain within 60s")

    finished = sum(stats["states"].values())
    lost = args.requests - finished
    done = stats["states"].get("done", 0)
    throughput = finished / stats["wall_s"] if stats.get("wall_s") else 0.0
    print(
        f"serve load: {finished}/{args.requests} jobs finished "
        f"({done} done) in {stats['wall_s']:.1f}s "
        f"= {throughput:.1f} jobs/s at concurrency {args.concurrency}"
    )
    print(f"  submit   {summarize(stats['submit_ms'])}")
    print(f"  job wall {summarize(stats['job_wall_ms'])}")
    print(f"  backpressure: {stats['rejected_429']}x 429, "
          f"{stats['rejected_503']}x 503, "
          f"{stats['resubmitted']} post-crash resubmits")

    status = telemetry_status
    if lost:
        print(f"serve load FAILED: {lost} jobs lost", file=sys.stderr)
        status = 1
    if stats["states"].get("failed") or stats["states"].get("expired"):
        print(f"serve load FAILED: non-done terminal states "
              f"{stats['states']}", file=sys.stderr)
        status = 1
    if args.chaos:
        print(f"chaos: killed at {stats.get('killed_at')} done, "
              f"duplicated={duplicated}")
        if duplicated:
            print(f"serve chaos FAILED: {duplicated} duplicated jobs",
                  file=sys.stderr)
            status = 1
        trace = Path(trace_out)
        if trace.exists():
            check = subprocess.run(
                [sys.executable, "-m", "repro", "inspect", "--check",
                 str(trace)],
                env=dict(os.environ, PYTHONPATH=str(REPO / "src")),
                capture_output=True, text=True,
            )
            print(f"inspect --check {trace.name}: rc={check.returncode}")
            if check.returncode != 0:
                print(check.stdout + check.stderr, file=sys.stderr)
                status = 1
        else:
            print("serve chaos FAILED: restarted server wrote no trace",
                  file=sys.stderr)
            status = 1

    if args.bench_out:
        sections = {}
        section = {
            "benchmark": f"{args.requests} small jobs "
            f"(BFS scale 8, {args.distinct} distinct specs) at "
            f"concurrency {args.concurrency}",
            "requests": args.requests,
            "concurrency": args.concurrency,
            "finished": finished,
            "states": stats["states"],
            "wall_seconds": round(stats["wall_s"], 2),
            "throughput_jobs_per_s": round(throughput, 1),
            "submit_latency": summarize(stats["submit_ms"]),
            "job_wall": summarize(stats["job_wall_ms"]),
            "rejected_429": stats["rejected_429"],
            "chaos": bool(args.chaos),
            "lost": lost,
            "duplicated": duplicated,
            "server_counters": (metrics or {}).get("counters"),
        }
        sections["serve"] = section
        if telemetry_section is not None:
            sections["telemetry"] = telemetry_section
        write_bench(args, sections)

    if status == 0:
        print("serve load OK")
    return status


if __name__ == "__main__":
    sys.exit(main())
