"""Perf smoke gate and trajectory artifact for the simulation engine.

Runs the PCC-policy simulation of the quick-scale BFS workload (the
same one the figures sweep) on the batched engine and compares wall
time against ``benchmarks/perf_baseline.json``. The gate fails when
the measured time exceeds ``baseline * --max-ratio`` — a coarse
tripwire for accidental hot-loop regressions, deliberately loose
enough to tolerate CI machine jitter.

Beyond the gate, the script measures the full engine story:

* ``--engines`` times all four translation tiers — scalar (the
  per-access object path), fast (the MRU memo path), batch (the
  per-quantum bulk-retire path), and columnar (the whole-epoch
  vectorized path) — and reports accesses/second for each. Tier
  timings are *interleaved* (round-robin across tiers within one
  process) so a noisy shared host cannot systematically favor
  whichever tier happened to run during a calm stretch.
* The columnar tier must not be slower than the fast tier (within a
  noise tolerance, ``--tier-gate-tolerance``); the gate fails
  otherwise.
* ``--verify-equivalence`` asserts all tiers produce bit-identical
  simulation statistics (the property the batch/columnar paths are
  built on).
* ``--steady-state`` also times fast/batch/columnar on a 4x-longer
  trace over the same footprint, where faults amortize and the
  vectorized ceiling shows. The columnar timing carries a *residue
  breakdown* read off the engine's pipeline counters: how much of the
  L1-miss residue retired as vectorized L2 array ops versus walking a
  live page table, and how many faults took the array-batched pre-pass
  versus the scalar handler.
* ``--jobs N`` times the quick-scale fig7 fragmentation sweep serially
  and with an ``N``-worker fan-out sharing the content-addressed trace
  cache, reporting the speedup. On a single-CPU host the
  parallel-vs-serial comparison is meaningless (a fan-out cannot beat
  serial), so it is skipped and annotated rather than reported as a
  regression.
* ``--bench-out FILE`` writes everything measured as a JSON trajectory
  artifact (e.g. ``BENCH_4.json``) so perf history accumulates per PR.
  The artifact embeds the tier numbers of the highest-numbered earlier
  ``BENCH_N.json`` at the repo root as ``previous``, so every artifact
  is a self-contained before/after record.

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py              # gate
    PYTHONPATH=src python scripts/perf_smoke.py --update     # re-baseline
    PYTHONPATH=src python scripts/perf_smoke.py --engines --verify-equivalence
    PYTHONPATH=src python scripts/perf_smoke.py --jobs 4 --bench-out BENCH_3.json
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO / "benchmarks" / "perf_baseline.json"

#: engine tier -> Simulator(fast_path=, batch=, columnar=) switches.
#: ``columnar`` is pinned in every entry because the Simulator defaults
#: it on — "batch" here must mean the plain per-quantum tier.
ENGINE_TIERS = {
    "scalar": {"fast_path": False, "batch": False, "columnar": False},
    "fast": {"fast_path": True, "batch": False, "columnar": False},
    "batch": {"fast_path": True, "batch": True, "columnar": False},
    "columnar": {"fast_path": True, "batch": True, "columnar": True},
}


def _quick_workload():
    from repro.experiments.common import QUICK, build_named_workload, config_for

    workload = build_named_workload(
        "BFS",
        graph_scale=QUICK.graph_scale,
        proxy_accesses=QUICK.proxy_accesses,
    )
    return workload, config_for(workload)


def _timed_run(workload, config, tier: str):
    from repro.engine.simulation import Simulator
    from repro.os.kernel import HugePagePolicy

    simulator = Simulator(config, policy=HugePagePolicy.PCC, **ENGINE_TIERS[tier])
    run_workload = copy.deepcopy(workload)
    start = time.perf_counter()
    result = simulator.run([run_workload])
    return time.perf_counter() - start, result


def _residue_breakdown(result) -> dict:
    """Residue-pipeline counters from one columnar run's metrics.

    ``retired_fraction`` is the share of the L1-miss residue the
    vectorized L2 pass retired without walking a live page table —
    the number PR 7's tentpole exists to raise.
    """
    counters = (result.metrics or {}).get("counters", {})

    def total(name: str) -> int:
        return sum(v for k, v in counters.items() if k.endswith(name))

    retired = total("columnar_l2_retired")
    walked = total("columnar_live_walked")
    residue = retired + walked
    return {
        "l2_retired": retired,
        "live_walked": walked,
        "retired_fraction": round(retired / residue, 4) if residue else None,
        "faults_batched": total("columnar_faults_batched"),
        "faults_scalar": total("columnar_faults_scalar"),
        "mt_epochs": total("columnar_mt_epochs"),
    }


def measure_tiers(rounds: int, tiers: list[str],
                  access_factor: int = 1) -> dict[str, dict]:
    """Best-of-``rounds`` timing of the quick BFS PCC simulation.

    All requested tiers are timed in *interleaved* rounds (tier A, B,
    C, then A, B, C again ...) within this one process. On shared
    hosts, wall-clock throughput swings severalfold between script
    invocations; interleaving keeps cross-tier comparisons honest by
    exposing every tier to the same noise profile. ``access_factor``
    tiles each thread's compressed trace that many times over the same
    footprint (the steady-state measurement, where fault costs
    amortize and the vectorized ceiling shows).
    """
    from dataclasses import replace

    import numpy as np

    from repro.experiments.common import QUICK, build_named_workload, config_for

    workload = build_named_workload(
        "BFS",
        graph_scale=QUICK.graph_scale,
        proxy_accesses=QUICK.proxy_accesses,
    )
    if access_factor > 1:
        for thread in workload.threads:
            trace = thread.trace
            thread.trace = replace(
                trace,
                vpns=np.tile(trace.vpns, access_factor),
                counts=np.tile(trace.counts, access_factor),
                total_accesses=trace.total_accesses * access_factor,
            )
            thread._stream = None
    config = config_for(workload)
    best: dict[str, float] = {tier: float("inf") for tier in tiers}
    accesses = 0
    residue = None
    for tier in tiers:  # warmup lap: traces built, code paths hot
        _, result = _timed_run(workload, config, tier)
        accesses = result.accesses
        if tier == "columnar":
            residue = _residue_breakdown(result)
    for _ in range(rounds):
        for tier in tiers:
            seconds, _ = _timed_run(workload, config, tier)
            best[tier] = min(best[tier], seconds)
    out = {
        tier: {
            "seconds": round(best[tier], 3),
            "accesses": accesses,
            "accesses_per_sec": round(accesses / best[tier]),
        }
        for tier in tiers
    }
    if residue is not None and "columnar" in out:
        out["columnar"]["residue"] = residue
    return out


def _fingerprint(result) -> tuple:
    return (
        result.policy,
        result.total_cycles,
        result.accesses,
        result.walks,
        result.l1_hits,
        result.l2_hits,
        result.promotions,
        result.demotions,
        result.promotion_timeline,
        result.per_core,
    )


def verify_equivalence() -> bool:
    """All four engine tiers must report bit-identical statistics."""
    workload, config = _quick_workload()
    prints = {
        tier: _fingerprint(_timed_run(workload, config, tier)[1])
        for tier in ENGINE_TIERS
    }
    reference = prints["scalar"]
    ok = all(fp == reference for fp in prints.values())
    status = "bit-identical" if ok else "DIVERGED"
    print(f"equivalence (scalar vs fast vs batch vs columnar): {status}")
    if not ok:
        for tier, fp in prints.items():
            print(f"  {tier}: {fp}", file=sys.stderr)
    return ok


def measure_cache(rounds: int) -> dict:
    """Trace-cache effectiveness: cold build vs cached memory-mapped load."""
    import tempfile

    from repro.experiments.common import QUICK, _cached_workload
    from repro.trace.cache import CACHE_DIR_ENV

    args = ("BFS", "kronecker", QUICK.graph_scale, QUICK.proxy_accesses, False, None)
    with tempfile.TemporaryDirectory(prefix="repro-perf-cache-") as tmp:
        previous = os.environ.get(CACHE_DIR_ENV)
        os.environ[CACHE_DIR_ENV] = tmp
        try:
            _cached_workload.cache_clear()
            start = time.perf_counter()
            _cached_workload(*args)
            cold = time.perf_counter() - start
            warm = []
            for _ in range(rounds):
                _cached_workload.cache_clear()
                start = time.perf_counter()
                _cached_workload(*args)
                warm.append(time.perf_counter() - start)
            _cached_workload.cache_clear()
        finally:
            if previous is None:
                del os.environ[CACHE_DIR_ENV]
            else:
                os.environ[CACHE_DIR_ENV] = previous
    best_warm = min(warm)
    lookups = 1 + rounds  # one miss, then all hits
    return {
        "cold_build_seconds": round(cold, 3),
        "cached_load_seconds": round(best_warm, 3),
        "load_speedup": round(cold / best_warm, 1) if best_warm else None,
        "hit_rate": round(rounds / lookups, 4),
    }


def measure_obs_overhead(rounds: int) -> dict:
    """Cost of the observability layer on the quick BFS PCC run.

    The gate compares ``observe=None`` (the default: auto-detection
    finds no tracer and no ``REPRO_OBS``, so every hook short-circuits)
    against ``observe=False`` (hard-off, the pre-observability code
    shape). Default-off must stay within 5% of hard-off — tracing that
    nobody asked for must be free. The fully *enabled* cost is also
    measured, informationally (it pays for span bookkeeping and
    per-walk histogram recording, and is allowed to).

    The live-progress path gets the stronger check: a run with a
    progress sink installed (snapshots at every feed point) must
    produce *bit-identical* simulation statistics to the plain run —
    progress reporting rides the scheduler loop boundary and never
    touches per-record execution, so it must not perturb the engine
    tier choice or any result the paper's figures are built from.
    """
    import tempfile

    from repro.engine.simulation import Simulator
    from repro.obs import progress as progress_module
    from repro.obs import tracer as tracer_module
    from repro.os.kernel import HugePagePolicy

    workload, config = _quick_workload()

    def timed(observe):
        simulator = Simulator(config, policy=HugePagePolicy.PCC, observe=observe)
        run_workload = copy.deepcopy(workload)
        start = time.perf_counter()
        result = simulator.run([run_workload])
        return time.perf_counter() - start, result

    def fingerprint(result) -> tuple:
        return (
            result.total_cycles, result.accesses, result.walks,
            result.l1_hits, result.l2_hits, result.promotions,
            result.demotions, tuple(result.promotion_timeline),
        )

    timed(False)  # warmup
    hard_off = min(timed(False)[0] for _ in range(rounds))
    auto_off, baseline = timed(None)
    for _ in range(rounds - 1):
        auto_off = min(auto_off, timed(None)[0])
    with tempfile.TemporaryDirectory(prefix="repro-obs-spool-") as spool:
        tracer_module.enable(spool_dir=spool)
        try:
            enabled = min(timed(None)[0] for _ in range(rounds))
        finally:
            tracer_module.disable()

    # bit-identity under live progress, at the most aggressive cadence
    snapshots: list[dict] = []
    sink = progress_module.add_sink(snapshots.append)
    previous_cadence = os.environ.get(progress_module.CADENCE_ENV)
    os.environ[progress_module.CADENCE_ENV] = "0"
    try:
        progress_on, progressed = timed(None)
    finally:
        progress_module.remove_sink(sink)
        if previous_cadence is None:
            os.environ.pop(progress_module.CADENCE_ENV, None)
        else:
            os.environ[progress_module.CADENCE_ENV] = previous_cadence
    progress_identical = fingerprint(progressed) == fingerprint(baseline)

    return {
        "hard_off_seconds": round(hard_off, 3),
        "auto_off_seconds": round(auto_off, 3),
        "enabled_seconds": round(enabled, 3),
        "disabled_ratio": round(auto_off / hard_off, 3),
        "enabled_ratio": round(enabled / hard_off, 3),
        "progress_seconds": round(progress_on, 3),
        "progress_snapshots": len(snapshots),
        "progress_stats_identical": progress_identical,
    }


def _timed_cli(args: list[str]) -> float:
    """Wall time of one fresh-interpreter ``python -m repro`` run."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro", *args],
        check=True,
        cwd=REPO,
        env=env,
        stdout=subprocess.DEVNULL,
    )
    return time.perf_counter() - start


def _schedulable_cpus() -> int | None:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count()


def measure_fan_out(jobs: int, cache_dir: str | None = None) -> dict:
    """Quick fig7 fragmentation sweep: serial vs ``--jobs`` fan-out.

    Both runs start a fresh interpreter (cold lru caches) and share one
    trace-cache directory, so the comparison isolates the fan-out win
    from trace-generation amortization.

    On a single-schedulable-CPU host the workers time-slice one core,
    so "parallel slower than serial" is physics, not a regression: the
    comparison is skipped (serial is still timed) and the record says
    why, so trajectory artifacts from cramped CI hosts don't read as
    fan-out regressions.
    """
    import tempfile

    from repro.trace.cache import CACHE_DIR_ENV

    cpus = _schedulable_cpus()
    single_cpu = cpus is not None and cpus == 1
    with tempfile.TemporaryDirectory(prefix="repro-perf-fig7-") as tmp:
        previous = os.environ.get(CACHE_DIR_ENV)
        os.environ[CACHE_DIR_ENV] = cache_dir or tmp
        try:
            serial = _timed_cli(["--scale", "quick", "fig7"])
            parallel = (
                None
                if single_cpu
                else _timed_cli(["--scale", "quick", "--jobs", str(jobs), "fig7"])
            )
        finally:
            if previous is None:
                del os.environ[CACHE_DIR_ENV]
            else:
                os.environ[CACHE_DIR_ENV] = previous
    record = {
        "sweep": "fig7 quick, 3 apps x 5 configs",
        "jobs": jobs,
        "serial_seconds": round(serial, 3),
    }
    if single_cpu:
        record["parallel_seconds"] = None
        record["speedup"] = None
        record["skipped"] = (
            f"single schedulable CPU (affinity={cpus}): parallel-vs-serial "
            "comparison is not meaningful on this host"
        )
    else:
        record["parallel_seconds"] = round(parallel, 3)
        record["speedup"] = round(serial / parallel, 2)
    return record


def _previous_artifact(out: Path) -> dict | None:
    """Tier numbers of the newest earlier ``BENCH_N.json``, if any."""
    import re

    best: tuple[int, Path] | None = None
    for path in REPO.glob("BENCH_*.json"):
        if path.resolve() == out.resolve():
            continue
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match and (best is None or int(match.group(1)) > best[0]):
            best = (int(match.group(1)), path)
    if best is None:
        return None
    try:
        data = json.loads(best[1].read_text())
    except (OSError, ValueError):
        return None
    keep: dict = {"artifact": best[1].name}
    for key in ("engine_tiers", "tier_gate", "steady_state"):
        if key in data:
            keep[key] = data[key]
    return keep


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.5,
        help="fail when measured/baseline exceeds this (default 1.5)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timed rounds (best-of)"
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed baseline from this machine",
    )
    parser.add_argument(
        "--engines",
        action="store_true",
        help="also time the scalar tier (informational)",
    )
    parser.add_argument(
        "--verify-equivalence",
        action="store_true",
        help="assert scalar/fast/batch/columnar statistics are bit-identical",
    )
    parser.add_argument(
        "--tier-gate-tolerance",
        type=float,
        default=0.10,
        help="columnar may trail fast by at most this fraction before the "
        "tier gate fails (default 0.10, absorbs shared-host jitter)",
    )
    parser.add_argument(
        "--steady-state",
        action="store_true",
        help="also time fast/batch/columnar on a 4x-longer trace over the "
        "same footprint (fault costs amortized)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="also time the quick fig7 sweep serial vs an N-worker fan-out",
    )
    parser.add_argument(
        "--obs-overhead",
        action="store_true",
        help="gate: tracing disabled-by-default must cost <=5%% vs "
        "observe=False hard-off (enabled cost reported informationally)",
    )
    parser.add_argument(
        "--obs-max-ratio",
        type=float,
        default=1.05,
        help="disabled-observability overhead gate threshold (default 1.05)",
    )
    parser.add_argument(
        "--bench-out",
        metavar="FILE",
        help="write a JSON trajectory artifact (e.g. BENCH_2.json)",
    )
    args = parser.parse_args(argv)

    artifact: dict = {
        "benchmark": "perf smoke trajectory",
        "workload": "quick BFS, PCC policy",
        "rounds": args.rounds,
        # Parallel speedups are bounded by the host: a fan-out cannot
        # beat serial on a single-CPU machine, so readers need this to
        # interpret the fig7 numbers. Tier throughputs on a 1-CPU
        # shared host also carry large jitter; tiers are interleaved
        # within this process to keep their *relative* order honest.
        "host": {
            "cpu_count": os.cpu_count(),
            "schedulable_cpus": _schedulable_cpus(),
        },
    }

    tier_names = ["fast", "batch", "columnar"]
    if args.engines:
        tier_names.insert(0, "scalar")
    tiers = measure_tiers(args.rounds, tier_names)
    artifact["engine_tiers"] = tiers
    for tier, numbers in tiers.items():
        print(
            f"{tier:>8}: {numbers['seconds']:.3f}s best of {args.rounds} "
            f"({numbers['accesses_per_sec']:,} accesses/s)"
        )

    status = 0
    # The columnar tier must earn its keep: at least fast-tier
    # throughput (minus jitter tolerance) on the same interleaved runs.
    fast_rate = tiers["fast"]["accesses_per_sec"]
    col_rate = tiers["columnar"]["accesses_per_sec"]
    floor = fast_rate * (1.0 - args.tier_gate_tolerance)
    artifact["tier_gate"] = {
        "columnar_accesses_per_sec": col_rate,
        "fast_accesses_per_sec": fast_rate,
        "ratio": round(col_rate / fast_rate, 3),
        "tolerance": args.tier_gate_tolerance,
        "passed": col_rate >= floor,
    }
    print(
        f"tier gate: columnar/fast = {col_rate / fast_rate:.3f} "
        f"(floor {1.0 - args.tier_gate_tolerance:.2f})"
    )
    if col_rate < floor:
        print(
            "perf smoke FAILED: columnar tier slower than fast tier",
            file=sys.stderr,
        )
        status = 1

    if args.steady_state:
        steady = measure_tiers(args.rounds, ["fast", "batch", "columnar"],
                               access_factor=4)
        artifact["steady_state"] = {
            "workload": "quick BFS x4 accesses, same footprint",
            "tiers": steady,
        }
        for tier, numbers in steady.items():
            print(
                f"steady {tier:>8}: {numbers['seconds']:.3f}s "
                f"({numbers['accesses_per_sec']:,} accesses/s)"
            )
        res = steady["columnar"].get("residue")
        if res and res["retired_fraction"] is not None:
            print(
                f"steady residue: {res['l2_retired']:,} L2-retired vs "
                f"{res['live_walked']:,} live-walked "
                f"({res['retired_fraction']:.1%} retired as array ops); "
                f"faults {res['faults_batched']:,} batched / "
                f"{res['faults_scalar']:,} scalar"
            )

    if args.verify_equivalence:
        ok = verify_equivalence()
        artifact["equivalence"] = "bit-identical" if ok else "diverged"
        if not ok:
            status = 1

    artifact["trace_cache"] = measure_cache(max(1, args.rounds - 1))
    print(
        "trace cache: cold build "
        f"{artifact['trace_cache']['cold_build_seconds']:.3f}s, cached load "
        f"{artifact['trace_cache']['cached_load_seconds']:.3f}s "
        f"(hit rate {artifact['trace_cache']['hit_rate']:.0%})"
    )

    if args.obs_overhead:
        obs = measure_obs_overhead(args.rounds)
        artifact["obs_overhead"] = obs
        print(
            f"obs overhead: hard-off {obs['hard_off_seconds']:.3f}s, "
            f"default-off {obs['auto_off_seconds']:.3f}s "
            f"(ratio {obs['disabled_ratio']:.3f}, max {args.obs_max_ratio}), "
            f"enabled {obs['enabled_seconds']:.3f}s "
            f"(ratio {obs['enabled_ratio']:.3f}, informational)"
        )
        print(
            f"  live progress: {obs['progress_snapshots']} snapshots in "
            f"{obs['progress_seconds']:.3f}s, stats identical: "
            f"{obs['progress_stats_identical']}"
        )
        if obs["disabled_ratio"] > args.obs_max_ratio:
            print(
                "perf smoke FAILED: disabled observability is not free",
                file=sys.stderr,
            )
            status = 1
        if not obs["progress_stats_identical"]:
            print(
                "perf smoke FAILED: live progress perturbed the "
                "simulation statistics",
                file=sys.stderr,
            )
            status = 1

    if args.jobs:
        fan = measure_fan_out(args.jobs)
        artifact["fig7_fan_out"] = fan
        if fan.get("skipped"):
            print(
                f"fig7 quick: serial {fan['serial_seconds']:.1f}s; "
                f"parallel comparison skipped ({fan['skipped']})"
            )
        else:
            print(
                f"fig7 quick: serial {fan['serial_seconds']:.1f}s vs "
                f"--jobs {args.jobs} {fan['parallel_seconds']:.1f}s "
                f"({fan['speedup']:.2f}x)"
            )

    seconds = tiers["batch"]["seconds"]
    if args.update:
        previous = {}
        if BASELINE_PATH.exists():
            previous = json.loads(BASELINE_PATH.read_text())
        record = {
            "benchmark": f"quick BFS, PCC policy, best-of-{args.rounds}, "
            "batched engine",
            "seconds": seconds,
            "engine": "batch",
        }
        # keep the pre-batching scalar-era baseline for comparison
        legacy = previous.get("scalar_baseline") or (
            {"benchmark": previous["benchmark"], "seconds": previous["seconds"]}
            if previous.get("engine") is None and "seconds" in previous
            else None
        )
        if legacy:
            record["scalar_baseline"] = legacy
        BASELINE_PATH.write_text(json.dumps(record, indent=2) + "\n")
        print(f"baseline updated -> {BASELINE_PATH}")
    elif not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update", file=sys.stderr)
        return 2
    else:
        baseline = json.loads(BASELINE_PATH.read_text())["seconds"]
        ratio = seconds / baseline
        artifact["gate"] = {
            "baseline_seconds": baseline,
            "measured_seconds": seconds,
            "ratio": round(ratio, 2),
            "max_ratio": args.max_ratio,
        }
        print(f"baseline {baseline:.3f}s -> ratio {ratio:.2f} (max {args.max_ratio})")
        if ratio > args.max_ratio:
            print("perf smoke FAILED: hot path regressed", file=sys.stderr)
            status = 1

    if args.bench_out:
        out = Path(args.bench_out)
        previous = _previous_artifact(out)
        if previous is not None:
            artifact["previous"] = previous
        else:
            # a fresh clone has no perf history; record that as data
            # (self-describing artifact) instead of failing the run
            artifact["previous"] = {
                "note": "no earlier BENCH_N.json found at the repo root; "
                "first trajectory point (fresh clone or pruned history)",
                "artifact": None,
            }
            print("bench-out: no previous BENCH artifact; recording "
                  "first trajectory point")
        out.write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"trajectory artifact -> {out}")

    if status == 0:
        print("perf smoke OK")
    return status


if __name__ == "__main__":
    sys.path.insert(0, str(REPO / "src"))
    sys.exit(main())
