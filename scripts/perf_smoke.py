"""Perf smoke gate: quick-scale BFS wall time vs a committed baseline.

Runs the PCC-policy simulation of the quick-scale BFS workload (the
same one the figures sweep) and compares wall time against
``benchmarks/perf_baseline.json``. The gate fails when the measured
time exceeds ``baseline * --max-ratio`` — a coarse tripwire for
accidental hot-loop regressions, deliberately loose enough to tolerate
CI machine jitter.

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py              # gate
    PYTHONPATH=src python scripts/perf_smoke.py --update     # re-baseline
    PYTHONPATH=src python scripts/perf_smoke.py --compare-fast-path

``--compare-fast-path`` additionally times the run with the translation
fast path disabled and reports the speedup ratio (informational).
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO / "benchmarks" / "perf_baseline.json"


def _timed_run(workload, config, fast_path: bool) -> float:
    from repro.engine.simulation import Simulator
    from repro.os.kernel import HugePagePolicy

    simulator = Simulator(
        config, policy=HugePagePolicy.PCC, fast_path=fast_path
    )
    run_workload = copy.deepcopy(workload)
    start = time.perf_counter()
    simulator.run([run_workload])
    return time.perf_counter() - start


def measure(rounds: int, fast_path: bool = True) -> float:
    """Best-of-``rounds`` wall time of the quick BFS PCC simulation."""
    from repro.experiments.common import QUICK, build_named_workload, config_for

    workload = build_named_workload(
        "BFS",
        graph_scale=QUICK.graph_scale,
        proxy_accesses=QUICK.proxy_accesses,
    )
    config = config_for(workload)
    # One warmup run takes trace construction and imports out of the
    # measurement; best-of-N suppresses scheduler noise.
    _timed_run(workload, config, fast_path)
    return min(_timed_run(workload, config, fast_path) for _ in range(rounds))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.5,
        help="fail when measured/baseline exceeds this (default 1.5)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timed rounds (best-of)"
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed baseline from this machine",
    )
    parser.add_argument(
        "--compare-fast-path",
        action="store_true",
        help="also time the run with the fast path disabled",
    )
    args = parser.parse_args(argv)

    seconds = measure(args.rounds)
    print(f"quick BFS (PCC): {seconds:.3f}s best of {args.rounds}")

    if args.compare_fast_path:
        slow = measure(args.rounds, fast_path=False)
        print(
            f"fast path off:   {slow:.3f}s "
            f"(speedup {slow / seconds:.2f}x with fast path)"
        )

    if args.update:
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "quick BFS, PCC policy, best-of-3",
                    "seconds": round(seconds, 3),
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline updated -> {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())["seconds"]
    ratio = seconds / baseline
    print(f"baseline {baseline:.3f}s -> ratio {ratio:.2f} (max {args.max_ratio})")
    if ratio > args.max_ratio:
        print("perf smoke FAILED: hot path regressed", file=sys.stderr)
        return 1
    print("perf smoke OK")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO / "src"))
    sys.exit(main())
