"""Fig. 7 — graph applications with 90% fragmented memory.

Five configurations per app: 4KB baseline, HawkEye, Linux THP, PCC,
and PCC with demotion. Expected shape (paper: 1.22x over baseline,
1.15x over HawkEye, 1.16x over Linux, demotion ~neutral): the PCC wins
because it spends the scarce contiguous frames on the few hottest
regions.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig7


def test_fig7_fragmented_memory(benchmark, scale, publish):
    rows = run_once(benchmark, lambda: fig7.run(scale))
    publish("fig7_fragmentation", fig7.render(rows))

    means = fig7.geomeans(rows)
    # orderings of the paper's headline comparison
    assert means["pcc"] > 1.1
    assert means["pcc"] > means["linux"] * 1.05
    assert means["pcc"] > means["hawkeye"] * 1.02
    # greedy THP under 90% fragmentation cannot beat base pages by much
    assert means["linux"] < 1.15
    # demotion is roughly performance-neutral (§5.1.1)
    assert abs(means["pcc_demote"] - means["pcc"]) < 0.12
