"""Sensitivity studies — the design constants the paper fixes.

* counter width: 2-4 bit counters decay too coarsely to rank HUBs;
  8 bits (the paper's choice) captures the full benefit, and wider
  counters add nothing — the area is better spent elsewhere.
* promotion interval: more frequent intervals promote earlier and help
  until overheads flatten the curve, supporting §3.3.1's "the OS can
  operate as frequently as desired".
* admission filter: the Fig. 3 accessed-bit check may not change small
  runs (the min-frequency gate already skips one-touch regions) but
  must never hurt.
"""

from benchmarks.conftest import run_once
from repro.analysis import report
from repro.experiments import sensitivity


def test_sensitivity_counter_bits(benchmark, scale, publish):
    result = run_once(benchmark, lambda: sensitivity.counter_bits_sweep(scale))
    publish("sensitivity_counter_bits", sensitivity.render_sweep(result))

    by_width = dict(zip(result.values, result.speedups))
    # 8 bits captures the full benefit...
    assert by_width[8] >= max(result.speedups) - 0.05
    # ...and wider counters add nothing significant
    assert abs(by_width[16] - by_width[8]) < 0.08
    # narrow counters can only be worse or equal
    assert by_width[2] <= by_width[8] + 0.05


def test_sensitivity_promotion_interval(benchmark, scale, publish):
    result = run_once(benchmark, lambda: sensitivity.interval_sweep(scale))
    publish("sensitivity_interval", sensitivity.render_sweep(result))

    # more intervals per run never hurt much, and very sparse intervals
    # (4 per run) clearly underperform frequent ones
    assert result.speedups[-1] > result.speedups[0]
    # the benefit saturates: the last doubling adds little
    assert result.speedups[-1] - result.speedups[-2] < 0.1


def test_sensitivity_admission_filter(benchmark, scale, publish):
    result = run_once(
        benchmark, lambda: sensitivity.admission_filter_study(scale)
    )
    publish(
        "sensitivity_admission",
        report.format_table(
            ["Configuration", "Speedup"],
            [
                ["with cold-miss filter (Fig. 3)",
                 report.speedup(result["with_filter"])],
                ["without filter",
                 report.speedup(result["without_filter"])],
            ],
            title="Sensitivity — PCC admission filter",
        ),
    )
    # the filter never hurts; any pollution effect only helps it
    assert result["with_filter"] >= result["without_filter"] - 0.03
