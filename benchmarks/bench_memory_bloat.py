"""Memory bloat — the §2.1 cost the PCC's selectivity avoids.

Greedy THP backs whole 2MB regions at first touch, speculatively
committing 511 extra pages each time; if that data is never accessed,
the memory is wasted ("memory bloat, thus wasting free memory"). The
PCC promotes only regions already proven hot by page-table walks, so
its bloat is bounded by the unmapped tail of genuinely hot regions.

This benchmark measures committed-but-never-accessed pages under both
policies on a sparse workload (canneal: a large netlist touched
unevenly) and on dense BFS, where both policies should be nearly
bloat-free.
"""

import copy

from benchmarks.conftest import run_once
from repro.analysis import report
from repro.analysis.utility import budget_regions_for
from repro.engine.simulation import Simulator
from repro.experiments.common import config_for
from repro.os.kernel import HugePagePolicy, KernelParams

#: realistic scarce-contiguity budget; greedy THP has no such knob —
#: its only selectivity is fault order, which is the point
BUDGET_PERCENT = 16


def _bloat_of(simulator) -> int:
    kernel = simulator.kernel
    bloat = kernel._greedy_thp.stats.bloat_pages
    if kernel._engine is not None:
        bloat += kernel._engine.stats.bloat_pages
    return bloat


def test_memory_bloat(benchmark, scale, publish):
    def run():
        rows = {}
        for app in ("canneal", "BFS"):
            workload = scale.workload(app)
            config = config_for(workload)
            budget = budget_regions_for(workload, BUDGET_PERCENT)
            per_policy = {}
            for label, policy in (
                ("Linux THP", HugePagePolicy.LINUX_THP),
                ("PCC", HugePagePolicy.PCC),
            ):
                params = (
                    KernelParams(
                        regions_to_promote=config.os.regions_to_promote,
                        promotion_budget_regions=budget,
                    )
                    if policy is HugePagePolicy.PCC
                    else None
                )
                simulator = Simulator(config, policy=policy, params=params)
                simulator.run([copy.deepcopy(workload)])
                touched = sum(
                    t.trace.unique_pages()
                    for p in [workload]
                    for t in p.threads
                )
                per_policy[label] = (_bloat_of(simulator), touched)
            rows[app] = per_policy
        return rows

    rows = run_once(benchmark, run)
    table_rows = []
    for app, per_policy in rows.items():
        for label, (bloat, touched) in per_policy.items():
            table_rows.append(
                [app, label, bloat, report.percent(bloat / max(1, touched))]
            )
    publish(
        "memory_bloat",
        report.format_table(
            ["App", "Policy", "Bloat pages", "vs touched pages"],
            table_rows,
            title="Memory bloat — speculative pages committed beyond use (§2.1)",
        ),
    )

    for app, per_policy in rows.items():
        greedy_bloat, _ = per_policy["Linux THP"]
        pcc_bloat, _ = per_policy["PCC"]
        # the PCC's proven-hot-first policy commits less speculative
        # memory than greedy fault-time backing
        assert pcc_bloat <= greedy_bloat, (app, per_policy)
    # on the sparse workload the gap is pronounced
    sparse_greedy, _ = rows["canneal"]["Linux THP"]
    sparse_pcc, _ = rows["canneal"]["PCC"]
    assert sparse_pcc < 0.8 * max(1, sparse_greedy)
