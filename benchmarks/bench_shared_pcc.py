"""Design alternative — per-core vs shared PCC (§3.2.2).

The paper argues for per-core PCCs: each core's TLB hierarchy feeds
its own small structure, keeping hardware simple, while the OS
aggregates. The shared alternative centralizes tracking in one larger
structure. This benchmark runs both on a multithreaded graph workload:
per-core must match or beat shared at equal total capacity (a shared
structure couples the threads' capacity; per-core isolates them),
supporting the paper's choice.
"""

import copy

from benchmarks.conftest import run_once
from repro.analysis import report
from repro.config import PCCConfig
from repro.engine.simulation import Simulator
from repro.engine.system import ProcessWorkload, partition_trace
from repro.experiments.common import config_for
from repro.os.kernel import HugePagePolicy
from repro.workloads.bfs import bfs_trace
from repro.workloads.registry import build_graph

THREADS = 4


def test_per_core_vs_shared_pcc(benchmark, scale, publish):
    def run():
        graph = build_graph("kronecker", scale=scale.graph_scale)
        trace, glayout = bfs_trace(graph)
        parts = partition_trace(trace, THREADS, glayout.layout)
        workload = ProcessWorkload.multi_thread(
            parts, glayout.layout, f"bfs-x{THREADS}"
        )
        rows = {}
        for label, (shared, entries) in (
            # equal total capacity: 4 x 8 per-core vs 1 x 32 shared
            ("per-core (4 x 8 entries)", (False, 8)),
            ("shared (1 x 32 entries)", (True, 32)),
        ):
            config = config_for(workload).with_(
                cores=THREADS,
                pcc=PCCConfig(entries=entries, shared=shared),
            )
            baseline = Simulator(config, policy=HugePagePolicy.NONE).run(
                [copy.deepcopy(workload)]
            )
            pcc = Simulator(config, policy=HugePagePolicy.PCC).run(
                [copy.deepcopy(workload)]
            )
            rows[label] = (
                baseline.total_cycles / pcc.total_cycles,
                pcc.promotions,
            )
        return rows

    rows = run_once(benchmark, run)
    publish(
        "shared_pcc",
        report.format_table(
            ["PCC placement", "Speedup", "Promotions"],
            [
                [label, report.speedup(speedup), promotions]
                for label, (speedup, promotions) in rows.items()
            ],
            title="Design alternative — per-core vs shared PCC (§3.2.2)",
        ),
    )

    speedups = {label: s for label, (s, _) in rows.items()}
    per_core = speedups["per-core (4 x 8 entries)"]
    shared = speedups["shared (1 x 32 entries)"]
    # both designs work; per-core is not worse at equal total capacity
    assert per_core > 1.05
    assert per_core >= shared - 0.1
