"""Fig. 2 — reuse-distance characterization of BFS on Kronecker.

Regenerates the page classification behind the scatter plot: a
substantial HUB population (high 4KB reuse distance, low 2MB reuse
distance) must exist, since those pages are what the PCC is built to
find.
"""

from benchmarks.conftest import run_once
from repro.analysis.reuse import AccessClass
from repro.experiments import fig2


def test_fig2_reuse_characterization(benchmark, scale, publish):
    result = run_once(benchmark, lambda: fig2.run(scale))
    publish("fig2_reuse", fig2.render(result))

    counts = result.counts
    total = sum(counts.values())
    # the three categories of §3.1: most pages are TLB-friendly, a
    # meaningful minority are HUBs
    assert counts[AccessClass.TLB_FRIENDLY] > 0.5 * total
    assert counts[AccessClass.HUB] > 0.03 * total
    assert result.hub_region_count > 0
