"""Ablation — static profile-guided allocation vs the dynamic PCC (§5.4.2).

The paper notes that ahead-of-time HUB knowledge (compiler/programmer
analysis) can guide huge-page *allocation* instead of dynamic
promotion. This ablation compares:

* the offline reuse-distance oracle backing its HUB regions at fault
  time (no promotion lag, no copy costs),
* the dynamic PCC (no prior knowledge), and
* the oracle fed a *stale* profile (the top HUB regions of a different
  run phase — here: deliberately shifted regions), where static
  allocation wastes its contiguity and the PCC's adaptivity wins.
"""

import copy

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import report
from repro.engine.simulation import Simulator
from repro.experiments.common import config_for
from repro.os.kernel import HugePagePolicy, KernelParams
from repro.os.oracle import hub_regions_from_profile
from repro.trace.events import Trace


def test_ablation_static_vs_dynamic(benchmark, scale, publish):
    def run():
        workload = scale.workload("BFS")
        raw = Trace(
            "bfs",
            workload.threads[0].trace.vpns.astype(np.uint64) << np.uint64(12),
        )
        hubs = hub_regions_from_profile(raw, threshold=128)
        stale = [region + 10_000 for region in hubs]  # nonsense profile
        config = config_for(workload)

        def simulate(policy, regions=None):
            params = (
                KernelParams(static_huge_regions=tuple(regions))
                if regions is not None
                else None
            )
            sim = Simulator(config, policy=policy, params=params)
            return sim.run([copy.deepcopy(workload)])

        return {
            "baseline": simulate(HugePagePolicy.NONE),
            "oracle": simulate(HugePagePolicy.ORACLE, regions=hubs),
            "oracle-stale": simulate(HugePagePolicy.ORACLE, regions=stale),
            "pcc": simulate(HugePagePolicy.PCC),
        }

    results = run_once(benchmark, run)
    base = results["baseline"].total_cycles
    rows = [
        [name, report.speedup(base / r.total_cycles), report.percent(r.walk_rate)]
        for name, r in results.items()
    ]
    publish(
        "ablation_oracle",
        report.format_table(
            ["Configuration", "Speedup", "TLB miss %"],
            rows,
            title="Ablation — static profile-guided allocation vs dynamic PCC (§5.4.2)",
        ),
    )

    speedup = {k: base / r.total_cycles for k, r in results.items()}
    # a fresh profile is at least as good as dynamic promotion
    assert speedup["oracle"] >= speedup["pcc"] - 0.05
    # a stale profile is useless; the PCC's adaptivity clearly wins
    assert speedup["oracle-stale"] < 1.05
    assert speedup["pcc"] > speedup["oracle-stale"] + 0.2
