"""Dataset matrix — the paper's §4 reporting convention.

Each graph workload's figures average over 6 datasets: {Kronecker,
social, web} x {unsorted, DBG-sorted}. This benchmark runs the PCC at
a 8% footprint budget over the full matrix and reports per-variant
speedups plus the geomean, verifying that the PCC's benefit is not an
artifact of one network shape or of DBG preprocessing.
"""

import copy

from benchmarks.conftest import run_once
from repro.analysis import report
from repro.analysis.aggregate import DATASET_MATRIX, geomean
from repro.analysis.utility import budget_regions_for
from repro.engine.simulation import Simulator
from repro.experiments.common import config_for
from repro.os.kernel import HugePagePolicy, KernelParams
from repro.workloads.registry import build_workload

BUDGET_PERCENT = 8


def test_dataset_matrix_geomean(benchmark, scale, publish):
    def run():
        table_rows = []
        means = {}
        for app in ("BFS", "PR"):
            speedups = {}
            for variant in DATASET_MATRIX:
                workload = build_workload(
                    app,
                    dataset=variant.dataset,
                    scale=scale.graph_scale,
                    sorted_dbg=variant.sorted_dbg,
                )
                config = config_for(workload)
                baseline = Simulator(config, policy=HugePagePolicy.NONE).run(
                    [copy.deepcopy(workload)]
                )
                params = KernelParams(
                    regions_to_promote=config.os.regions_to_promote,
                    promotion_budget_regions=budget_regions_for(
                        workload, BUDGET_PERCENT
                    ),
                )
                pcc = Simulator(
                    config, policy=HugePagePolicy.PCC, params=params
                ).run([copy.deepcopy(workload)])
                speedups[variant.label] = (
                    baseline.total_cycles / pcc.total_cycles
                )
            means[app] = geomean(speedups.values())
            for label, value in speedups.items():
                table_rows.append([app, label, report.speedup(value)])
            table_rows.append([app, "GEOMEAN", report.speedup(means[app])])
        return table_rows, means

    table_rows, means = run_once(benchmark, run)
    publish(
        "dataset_matrix",
        report.format_table(
            ["App", "Dataset", f"PCC speedup @{BUDGET_PERCENT}%"],
            table_rows,
            title="Dataset matrix — geomean over 3 networks x 2 orderings (§4)",
        ),
    )
    # the PCC wins on every graph app across the whole matrix
    for app, mean in means.items():
        assert mean > 1.15, (app, mean)
