"""Demotion under phase changes (§3.3.3, "Application Phases").

The paper finds demotion ~neutral on its steady graph workloads but
flags phased applications — where promoted pages later go cold — as
the case demotion exists for, leaving the study to future work. This
benchmark supplies that study with a synthetic two-phase workload: the
hot arena swaps mid-run under 85% fragmentation, so a promotion-only
policy is stranded with phase A's frames while the aging probe + demote
path recycles them for phase B.
"""

import copy

from benchmarks.conftest import run_once
from repro.analysis import report
from repro.config import scaled_config
from repro.engine.simulation import Simulator
from repro.experiments.common import memory_for
from repro.os.kernel import HugePagePolicy, KernelParams
from repro.workloads.phased import phased_workload

FRAGMENTATION = 0.85


def test_demotion_on_phase_change(benchmark, publish):
    def run():
        workload = phased_workload(accesses_per_phase=120_000)
        config = scaled_config(
            memory_bytes=memory_for(workload),
            promote_every_accesses=workload.total_accesses // 24,
        )

        def simulate(policy, demote=False):
            params = KernelParams(regions_to_promote=8, demotion_enabled=demote)
            sim = Simulator(
                config, policy=policy, params=params,
                fragmentation=FRAGMENTATION,
            )
            result = sim.run([copy.deepcopy(workload)])
            stats = sim.kernel._engine.stats if sim.kernel._engine else None
            return result, stats

        baseline, _ = simulate(HugePagePolicy.NONE)
        plain, plain_stats = simulate(HugePagePolicy.PCC)
        demote, demote_stats = simulate(HugePagePolicy.PCC, demote=True)
        return baseline, (plain, plain_stats), (demote, demote_stats)

    baseline, (plain, plain_stats), (demote, demote_stats) = run_once(
        benchmark, run
    )

    base = baseline.total_cycles
    text = report.format_table(
        ["Configuration", "Speedup", "TLB miss %", "Promos", "Demotes"],
        [
            ["PCC (promote only)",
             report.speedup(base / plain.total_cycles),
             report.percent(plain.walk_rate),
             plain_stats.promotions, plain_stats.demotions],
            ["PCC + aging demotion",
             report.speedup(base / demote.total_cycles),
             report.percent(demote.walk_rate),
             demote_stats.promotions, demote_stats.demotions],
        ],
        title=(
            "Demotion on a two-phase workload at "
            f"{FRAGMENTATION:.0%} fragmentation (§3.3.3)"
        ),
    )
    publish("demotion_phases", text)

    assert plain_stats.demotions == 0
    assert demote_stats.demotions > 0
    # demotion recycles stranded frames into real speedup
    assert demote.total_cycles < plain.total_cycles * 0.9
