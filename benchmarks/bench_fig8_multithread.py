"""Fig. 8 — multithreaded graph applications with per-core PCCs.

Each app runs with 2/4/8 threads; the OS merges per-core candidate
lists under the highest-frequency or round-robin policy. Expected
shape: both policies close on each other, frequency slightly ahead on
average (load imbalance), and per-thread speedups below the
single-thread numbers because shootdowns and atomics scale with
thread count.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig8


def test_fig8_multithread(benchmark, scale, publish):
    cells = run_once(benchmark, lambda: fig8.run(scale))
    publish("fig8_multithread", fig8.render(cells))

    for cell in cells:
        # neither policy is allowed to lose to the baseline
        assert cell.speedup_frequency > 0.95, cell
        assert cell.speedup_round_robin > 0.95, cell
        # both stay below the all-huge ideal
        assert cell.speedup_frequency <= cell.ideal + 0.08, cell

    # frequency >= round-robin on average (the paper's "slightly more
    # performant" finding)
    freq_mean = sum(c.speedup_frequency for c in cells) / len(cells)
    rr_mean = sum(c.speedup_round_robin for c in cells) / len(cells)
    assert freq_mean >= rr_mean - 0.03

    # gains shrink as thread count grows (serialization + shootdowns)
    by_app: dict[str, dict[int, float]] = {}
    for cell in cells:
        by_app.setdefault(cell.app, {})[cell.threads] = cell.speedup_frequency
    for app, by_threads in by_app.items():
        threads = sorted(by_threads)
        assert by_threads[threads[-1]] <= by_threads[threads[0]] + 0.15, app
