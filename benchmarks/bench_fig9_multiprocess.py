"""Fig. 9 — multiprocess case studies.

Case (a): TLB-sensitive PageRank beside insensitive mcf — the
TLB-sensitive process captures most of the huge pages and most of the
benefit while the co-runner is unaffected. Case (b): two sensitive
apps (PageRank + SSSP) — both gain, and round-robin avoids starvation.
Both panels (speedup and #THPs vs budget) are regenerated per policy.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig9


def test_fig9a_sensitive_plus_insensitive(benchmark, scale, publish):
    case = run_once(benchmark, lambda: fig9.run_case("PR", "mcf", scale))
    publish("fig9a_pr_mcf", fig9.render(case))
    pr, mcf = case.apps

    for series in (case.frequency, case.round_robin):
        # PageRank reaps a real speedup once budget allows
        assert max(series.speedups[pr]) > 1.2, series.policy
        # mcf is unaffected either way (within noise)
        assert all(s > 0.93 for s in series.speedups[mcf]), series.policy
        # at full budget PageRank holds more huge pages than mcf
        assert series.huge_pages[pr][-1] > series.huge_pages[mcf][-1]


def test_fig9b_two_sensitive_apps(benchmark, scale, publish):
    case = run_once(benchmark, lambda: fig9.run_case("PR", "SSSP", scale))
    publish("fig9b_pr_sssp", fig9.render(case))
    pr, sssp = case.apps

    for series in (case.frequency, case.round_robin):
        # both TLB-sensitive apps end up clearly above baseline
        assert max(series.speedups[pr]) > 1.15, series.policy
        assert max(series.speedups[sssp]) > 1.15, series.policy
        # huge pages are genuinely shared: neither app is starved at
        # the full budget
        assert series.huge_pages[pr][-1] > 0
        assert series.huge_pages[sssp][-1] > 0
