"""Benchmark harness configuration.

Each benchmark reproduces one of the paper's tables or figures, runs
exactly once (``benchmark.pedantic`` with a single round — these are
experiments, not microbenchmarks), prints the same rows/series the
paper reports, and archives the rendering under
``benchmarks/results/``.

Scale is selected with ``REPRO_BENCH_SCALE=quick|full`` (default
quick); app lists can be trimmed with ``REPRO_BENCH_APPS=BFS,PR``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import FULL, QUICK

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if name == "full":
        return FULL
    return QUICK


@pytest.fixture(scope="session")
def apps():
    """Application list override for the long sweeps."""
    spec = os.environ.get("REPRO_BENCH_APPS")
    if spec:
        return [name.strip() for name in spec.split(",") if name.strip()]
    return None


@pytest.fixture(scope="session", autouse=True)
def session_metrics():
    """Collect every run's metrics bus export for the whole session.

    The aggregate lands next to the renderings so a benchmark sweep
    leaves a machine-readable record of every counter, not just the
    formatted tables.
    """
    from repro.metrics import collecting

    with collecting() as collector:
        yield collector
    if collector.runs:
        RESULTS_DIR.mkdir(exist_ok=True)
        collector.write_json(RESULTS_DIR / "metrics.json")


@pytest.fixture
def publish():
    """Print a rendering and archive it under benchmarks/results/."""

    def _publish(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _publish


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
