"""Ablations — the design choices §3.2 and §5.4 discuss.

* Replacement policy: LFU-with-LRU-tiebreak vs plain LRU eviction in
  the PCC (the paper found little difference at adequate sizes).
* Page-walk caches: PWCs shorten walks, the PCC removes them; the two
  are complementary, not redundant (§5.4.1).
* 1GB PCC: a hot set spanning multiple gigabytes defeats 2MB entries;
  the companion PCC plus the §3.2.3 dominance rule recovers it.
"""

import copy

from benchmarks.conftest import run_once
from repro.config import PCCConfig, scaled_config
from repro.engine.simulation import Simulator
from repro.experiments import ablations
from repro.os.kernel import HugePagePolicy


def test_ablation_replacement_policy(benchmark, scale, publish):
    rows = run_once(benchmark, lambda: ablations.run_replacement(scale))
    publish("ablation_replacement", ablations.render_replacement(rows))

    for row in rows:
        # the paper: "we did not find replacement policy changes to have
        # significant impact" at adequate sizes
        if row.pcc_entries >= 32:
            assert abs(row.speedup_lfu - row.speedup_lru) < 0.25, row


def test_ablation_page_walk_caches(benchmark, scale, publish):
    rows = run_once(benchmark, lambda: ablations.run_pwc(scale))
    publish("ablation_pwc", ablations.render_pwc(rows))

    for row in rows:
        # PWCs shorten walks measurably...
        assert row.refs_per_walk_pwc < row.refs_per_walk_no_pwc, row
        assert row.speedup_pwc_only > 1.02, row
        # ...yet the PCC still finds real speedup on top of them,
        # because PWCs cannot remove TLB misses (§5.4.1)
        assert row.speedup_pcc_on_top > 1.1, row


def test_ablation_1gb_pcc(benchmark, publish):
    def run():
        workload = ablations.giant_span_workload(
            giga_regions=2, accesses=120_000
        )
        config = scaled_config(memory_bytes=4 << 30).with_(
            pcc=PCCConfig(entries=32, giga_entries=8, giga_enabled=True)
        )
        baseline = Simulator(config, policy=HugePagePolicy.NONE).run(
            [copy.deepcopy(workload)]
        )
        sim = Simulator(config, policy=HugePagePolicy.PCC)
        pcc = sim.run([copy.deepcopy(workload)])
        return baseline, pcc, sim.kernel._engine.stats

    baseline, pcc, stats = run_once(benchmark, run)
    from repro.analysis import report

    text = "\n".join(
        [
            "Ablation — 1GB PCC on a multi-GB-span hot set (§3.2.3)",
            f"baseline TLB miss: {report.percent(baseline.walk_rate)}",
            f"PCC(2MB+1GB) TLB miss: {report.percent(pcc.walk_rate)}",
            f"speedup: {report.speedup(baseline.total_cycles / pcc.total_cycles)}",
            f"2MB promotions: {stats.promotions}, "
            f"1GB collective promotions: {stats.giga_promotions}",
        ]
    )
    publish("ablation_1gb_pcc", text)

    # the hot set defeats 4KB entirely and 1GB promotion recovers it
    assert baseline.walk_rate > 0.9
    assert stats.giga_promotions >= 1
    assert pcc.walk_rate < 0.6 * baseline.walk_rate
    assert baseline.total_cycles / pcc.total_cycles > 1.4
