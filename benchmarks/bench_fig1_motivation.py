"""Fig. 1 — motivation: 4KB vs 2MB vs Linux THP at 50% fragmentation.

Regenerates both panels (TLB miss % and speedup) for all 8
applications. Expected shape: huge pages give up to ~2x (geomean
~1.3x in the paper) while greedy THP under fragmentation hugs the
baseline.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig1


def test_fig1_motivation(benchmark, scale, apps, publish):
    rows = run_once(benchmark, lambda: fig1.run(scale, apps=apps))
    publish("fig1_motivation", fig1.render(rows))

    sensitive = [r for r in rows if r.app in ("BFS", "SSSP", "PR")]
    for row in sensitive:
        # huge pages must clearly beat 4KB for the TLB-sensitive apps...
        assert row.speedup_2m > 1.15, row
        # ...and greedy THP under fragmentation must not reach them
        assert row.speedup_thp < row.speedup_2m, row
        # TLB miss rate collapses with full huge-page backing
        assert row.miss_2m < 0.25 * row.miss_4k, row
