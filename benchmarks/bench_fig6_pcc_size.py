"""Fig. 6 — PCC size sensitivity (4 to 1024 entries, 32% budget).

Expected shape: speedup rises with PCC size and saturates once the
structure holds the workload's HUB set; growing it further is wasted
area — the knee argument behind the paper's 128-entry choice.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig6


def test_fig6_pcc_size_sensitivity(benchmark, scale, publish):
    results = run_once(benchmark, lambda: fig6.run(scale))
    publish("fig6_pcc_size", fig6.render(results))

    for app in results:
        first, last = app.speedups[0], app.speedups[-1]
        best = max(app.speedups)
        # growing the PCC helps: a 4-entry structure cannot surface
        # candidates fast enough
        assert last > first + 0.05, app.app
        # ...with saturating returns: the knee is before the largest
        # size (the final doubling adds almost nothing)
        assert app.speedups[-1] - app.speedups[-2] < 0.15, app.app
        # and the sweep never exceeds the all-huge ideal
        assert best <= app.ideal + 0.08, app.app
