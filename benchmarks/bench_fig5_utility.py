"""Fig. 5 — single-thread utility curves: PCC vs HawkEye.

Regenerates, per application, the 9-point speedup and PTW-rate curves
for both policies plus the Linux THP (50%/90% fragmented) and all-huge
ideal reference lines. Expected shape: the PCC curve rises steeply at
small budgets and reaches most of the ideal; HawkEye trails at every
budget; Linux under fragmentation hugs 1.0x.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig5
from repro.workloads.registry import SPECS


def test_fig5_utility_curves(benchmark, scale, apps, publish):
    result = run_once(benchmark, lambda: fig5.run(scale, apps=apps))
    publish("fig5_utility", fig5.render(result))

    for app in result.apps:
        pcc = app.pcc.speedups()
        hawkeye = app.hawkeye.speedups()
        # curves are anchored at the shared 4KB baseline
        assert pcc[0] == 1.0
        assert hawkeye[0] == 1.0
        # the PCC never loses to HawkEye by more than noise at any
        # budget, and clearly wins somewhere for TLB-sensitive apps
        assert all(p >= h - 0.08 for p, h in zip(pcc, hawkeye)), app.app
        if SPECS[app.app].tlb_sensitivity == "high":
            assert max(pcc) > 1.15, app.app
            assert max(p - h for p, h in zip(pcc, hawkeye)) > 0.05, app.app
            # PCC's best point approaches the ideal line (69-77% of the
            # ideal *speedup ratio* in the paper; we accept >=55%)
            assert max(pcc) >= 0.55 * app.ideal, app.app
        # PTW rate must fall as budget grows for sensitive apps
        walks = app.pcc.walk_rates()
        assert walks[-1] <= walks[0] + 1e-9, app.app
