"""Direction-optimizing BFS — workload-side sensitivity check.

GAP's real BFS is direction-optimizing: large-frontier levels switch
to a bottom-up sweep that reads the property array sequentially. That
sweep is far more TLB-friendly than top-down pushing, so DO-BFS has a
lower baseline TLB miss rate and less huge-page headroom — but the
headroom that remains is still concentrated in the same HUB regions,
and the PCC harvests a comparable *fraction* of it. This guards the
reproduction against the objection that the headline numbers depend on
the naive traversal direction.
"""

import copy

from benchmarks.conftest import run_once
from repro.analysis import report
from repro.engine.simulation import Simulator
from repro.engine.system import ProcessWorkload
from repro.experiments.common import config_for
from repro.os.kernel import HugePagePolicy
from repro.workloads.bfs import bfs_trace
from repro.workloads.registry import build_graph


def test_direction_optimizing_bfs(benchmark, scale, publish):
    def run():
        graph = build_graph("kronecker", scale=scale.graph_scale)
        rows = {}
        for label, kwargs in (
            ("top-down", {}),
            ("direction-optimizing", {"direction_optimizing": True}),
        ):
            trace, glayout = bfs_trace(graph, **kwargs)
            workload = ProcessWorkload.single_thread(trace, glayout.layout)
            config = config_for(workload)

            def simulate(policy):
                sim = Simulator(config, policy=policy)
                return sim.run([copy.deepcopy(workload)])

            baseline = simulate(HugePagePolicy.NONE)
            pcc = simulate(HugePagePolicy.PCC)
            ideal = simulate(HugePagePolicy.IDEAL)
            rows[label] = {
                "miss": baseline.walk_rate,
                "pcc": baseline.total_cycles / pcc.total_cycles,
                "ideal": baseline.total_cycles / ideal.total_cycles,
            }
        return rows

    rows = run_once(benchmark, run)
    publish(
        "do_bfs",
        report.format_table(
            ["Traversal", "Baseline TLB miss", "PCC speedup", "Ideal"],
            [
                [label, report.percent(r["miss"]), report.speedup(r["pcc"]),
                 report.speedup(r["ideal"])]
                for label, r in rows.items()
            ],
            title="Direction-optimizing BFS vs top-down (workload sensitivity)",
        ),
    )

    top_down = rows["top-down"]
    optimized = rows["direction-optimizing"]
    # the bottom-up sweeps soften the TLB pressure...
    assert optimized["miss"] < top_down["miss"]
    assert optimized["ideal"] < top_down["ideal"] + 0.05
    # ...but the PCC still captures a substantial share of the
    # remaining headroom (bottom-up probes scatter across the whole
    # edge array — genuine low-reuse misses no candidate can fix)
    for r in rows.values():
        captured = (r["pcc"] - 1.0) / max(1e-9, r["ideal"] - 1.0)
        assert captured > 0.35, rows
