"""Table 1 — evaluation applications and inputs, plus Table 2.

Regenerates the workload inventory at the reproduction's scale (graph
nodes/edges, footprints, trace volumes) and renders the simulated
machine's Table 2 parameters.
"""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table1_workload_inventory(benchmark, scale, publish):
    rows = run_once(benchmark, lambda: tables.run_table1(scale))
    publish(
        "table1_workloads",
        tables.render_table1(rows) + "\n\n" + tables.render_table2(),
    )

    graph_rows = [r for r in rows if r.app in ("BFS", "SSSP", "PR")]
    assert len(graph_rows) == 9  # 3 apps x 3 datasets
    # SSSP's footprint exceeds BFS's on the same dataset (weights array),
    # matching Table 1's ratios
    bfs = {r.dataset: r for r in rows if r.app == "BFS"}
    sssp = {r.dataset: r for r in rows if r.app == "SSSP"}
    for dataset in bfs:
        assert sssp[dataset].footprint_bytes > 1.5 * bfs[dataset].footprint_bytes
    # every workload produced a non-trivial trace
    assert all(r.accesses > 10_000 for r in rows)
