"""Ablation — PCC associativity (§3.2.1).

The paper argues the PCC "can afford full associativity to avoid all
conflict misses" because it is tiny and off the critical path. The
measured refinement: for real workloads whose HUB regions are
*contiguous* (property arrays), modulo set indexing never aliases them
and a set-associative PCC matches the fully-associative one exactly.
Conflicts — and the full-associativity advantage — appear when hot
regions alias in the index, which the second measurement provokes with
a strided hot set. Full associativity is thus a robustness choice
against pathological layouts rather than a steady-state win.
"""

import copy

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import report
from repro.analysis.utility import budget_regions_for
from repro.config import PCCConfig, scaled_config
from repro.engine.simulation import Simulator
from repro.engine.system import ProcessWorkload
from repro.experiments.common import config_for, memory_for, run_policy
from repro.os.kernel import HugePagePolicy
from repro.trace.recorder import TraceRecorder
from repro.vm.layout import AddressSpaceLayout

WAYS = (0, 4, 2, 1)  # 0 = fully associative
BUDGET_PERCENT = 8
#: swept at the capacity-sensitive size Fig. 6 identifies, where losing
#: a hot candidate to a conflict actually costs promotions
PCC_ENTRIES = 8


def test_ablation_pcc_associativity(benchmark, scale, publish):
    def run():
        workload = scale.workload("PR")
        base_config = config_for(
            workload,
            # few intervals: candidate retention matters, as in Fig. 6
            promote_every_accesses=max(
                5_000, workload.total_accesses // 4
            ),
        )
        budget = budget_regions_for(workload, BUDGET_PERCENT)
        baseline = run_policy(workload, HugePagePolicy.NONE, base_config)
        rows = {}
        for ways in WAYS:
            config = base_config.with_(
                pcc=PCCConfig(entries=PCC_ENTRIES, associativity=ways)
            )
            result = run_policy(
                workload, HugePagePolicy.PCC, config, budget_regions=budget
            )
            rows[ways] = baseline.total_cycles / result.total_cycles
        return rows

    rows = run_once(benchmark, run)
    aliased = _aliasing_hot_set_study()
    publish(
        "ablation_associativity",
        report.format_table(
            ["PCC organization", "PR (contiguous HUBs)", "aliased hot set"],
            [
                [
                    "fully associative" if ways == 0 else f"{ways}-way",
                    report.speedup(rows[ways]),
                    report.speedup(aliased[ways]),
                ]
                for ways in rows
            ],
            title="Ablation — PCC associativity (§3.2.1)",
        ),
    )

    full = rows[0]
    # contiguous HUB regions never alias: all organizations tie
    for ways, speedup in rows.items():
        assert abs(speedup - full) < 0.05, (ways, speedup)
    # an aliasing-hostile hot set punishes low associativity
    assert aliased[0] > aliased[1] + 0.1
    assert aliased[0] >= max(aliased.values()) - 0.03


def _aliasing_hot_set_study() -> dict[int, float]:
    """Hot regions spaced exactly one index-stride apart: with an
    8-entry PCC, a direct-mapped variant maps them all to one set and
    churns, never accumulating the frequency the promotion gate needs."""
    rng = np.random.default_rng(17)
    layout = AddressSpaceLayout()
    arena = layout.allocate("arena", 160 << 20)  # 80 regions
    recorder = TraceRecorder("aliased", layout)
    base_region = arena.start >> 21
    # 8 hot regions whose tags are congruent mod 8 (the set count)
    hot_regions = [base_region + offset for offset in range(0, 64, 8)]
    picks = rng.integers(0, len(hot_regions), size=120_000)
    offsets = rng.integers(0, (2 << 20) // 4096, size=120_000)
    addresses = (
        (np.array(hot_regions, dtype=np.uint64)[picks] << np.uint64(21))
        + offsets.astype(np.uint64) * np.uint64(4096)
    )
    recorder.record(addresses)
    workload = ProcessWorkload.single_thread(recorder.finish(), layout)

    config = scaled_config(
        memory_bytes=memory_for(workload),
        promote_every_accesses=workload.total_accesses // 12,
    )
    baseline = run_policy(workload, HugePagePolicy.NONE, config)
    out = {}
    for ways in WAYS:
        pcc_config = config.with_(
            pcc=PCCConfig(entries=PCC_ENTRIES, associativity=ways)
        )
        simulator = Simulator(pcc_config, policy=HugePagePolicy.PCC)
        result = simulator.run([copy.deepcopy(workload)])
        out[ways] = baseline.total_cycles / result.total_cycles
    return out
