"""Tests for the utility-curve runner."""

import pytest

from repro.analysis.utility import (
    BUDGET_PERCENTS,
    UtilityCurve,
    UtilityPoint,
    budget_regions_for,
    utility_curve,
)
from repro.os.kernel import HugePagePolicy
from tests.conftest import make_workload
from tests.engine.test_simulation import hot_cold_addresses


class TestBudgets:
    def test_paper_axis(self):
        assert BUDGET_PERCENTS == (0, 1, 2, 4, 8, 16, 32, 64, 100)

    def test_zero_budget(self, config):
        workload = make_workload(hot_cold_addresses())
        assert budget_regions_for(workload, 0) == 0

    def test_full_budget_unlimited(self, config):
        workload = make_workload(hot_cold_addresses())
        assert budget_regions_for(workload, 100) is None

    def test_small_percent_rounds_up_to_one(self):
        workload = make_workload(hot_cold_addresses())
        assert budget_regions_for(workload, 1) >= 1


class TestCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        from repro.config import tiny_config

        # 32 hot pages thrash the tiny 8-entry L2, so promotion of the
        # hot region delivers a real gain
        workload = make_workload(
            hot_cold_addresses(hot_pages=32, repeats=2500)
        )
        return utility_curve(
            workload,
            tiny_config(),
            HugePagePolicy.PCC,
            budgets=(0, 25, 100),
        )

    def test_point_per_budget(self, curve):
        assert [p.budget_percent for p in curve.points] == [0, 25, 100]

    def test_baseline_speedup_is_one(self, curve):
        assert curve.points[0].speedup == 1.0
        assert curve.points[0].promotions == 0

    def test_speedup_non_decreasing_with_budget(self, curve):
        speedups = curve.speedups()
        assert speedups[-1] >= speedups[0]

    def test_walk_rate_decreases_with_budget(self, curve):
        rates = curve.walk_rates()
        assert rates[-1] < rates[0]

    def test_peak_and_fraction_helpers(self, curve):
        peak = curve.peak_speedup()
        assert peak >= 1.0
        budget = curve.budget_for_fraction_of_peak(0.5)
        assert budget in (0, 25, 100)


class TestCurveDataclasses:
    def test_empty_curve_helpers(self):
        curve = UtilityCurve("w", "pcc", points=[
            UtilityPoint(0, 0, 100, 0.5, 0, speedup=1.0)
        ])
        assert curve.budget_for_fraction_of_peak(0.75) == 0


class TestFragmentedCurve:
    def test_fragmentation_caps_effective_budget(self):
        """Under fragmentation, promotions stop at the contiguity
        capacity even when the budget axis asks for more."""
        from repro.config import tiny_config

        workload = make_workload(
            hot_cold_addresses(hot_pages=32, repeats=2500)
        )
        curve = utility_curve(
            workload,
            tiny_config(memory_bytes=8 << 21),  # 8 frames
            HugePagePolicy.PCC,
            budgets=(0, 100),
            fragmentation=0.75,  # 6 pinned, 2 scatter-movable
        )
        full_point = curve.points[-1]
        # at most the two recoverable frames could be promoted
        assert full_point.promotions <= 2

    def test_unfragmented_curve_promotes_more(self):
        from repro.config import tiny_config

        workload = make_workload(
            hot_cold_addresses(hot_pages=32, repeats=2500)
        )
        free = utility_curve(
            workload, tiny_config(), HugePagePolicy.PCC, budgets=(0, 100)
        )
        tight = utility_curve(
            workload,
            tiny_config(memory_bytes=8 << 21),
            HugePagePolicy.PCC,
            budgets=(0, 100),
            fragmentation=0.75,
        )
        assert free.points[-1].promotions >= tight.points[-1].promotions
