"""Tests for the diagnostics renderers."""

import numpy as np
import pytest

from repro.analysis import diagnostics
from repro.config import tiny_config
from repro.engine.cpu import Core
from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy
from repro.vm.pagetable import PageTable
from tests.conftest import make_workload
from tests.engine.test_simulation import hot_cold_addresses

BASE = 0x5555_5540_0000


@pytest.fixture
def warmed_core():
    core = Core(tiny_config())
    table = PageTable()
    for page in range(8):
        table.map_base(BASE + page * 4096, frame=page)
    for page in range(8):
        core.access_page((BASE >> 12) + page, table)
    return core


class TestTLBBreakdown:
    def test_four_structures(self, warmed_core):
        breakdown = diagnostics.tlb_breakdown(warmed_core)
        names = [entry.name for entry in breakdown]
        assert names == ["L1-4K", "L1-2M", "L1-1G", "L2"]

    def test_counts_consistent(self, warmed_core):
        l1 = diagnostics.tlb_breakdown(warmed_core)[0]
        assert l1.misses > 0
        assert 0.0 <= l1.hit_rate <= 1.0
        assert l1.occupancy > 0

    def test_hit_rate_empty(self):
        core = Core(tiny_config())
        for entry in diagnostics.tlb_breakdown(core):
            assert entry.hit_rate == 0.0


class TestRenderers:
    def test_render_core(self, warmed_core):
        text = diagnostics.render_core(warmed_core)
        assert "L1-4K" in text
        assert "walker:" in text
        assert "2MB PCC:" in text

    def test_render_core_with_giga(self):
        from repro.config import PCCConfig

        config = tiny_config().with_(
            pcc=PCCConfig(entries=4, giga_entries=2, giga_enabled=True)
        )
        text = diagnostics.render_core(Core(config))
        assert "1GB PCC:" in text

    def test_render_kernel_and_run(self, config):
        simulator = Simulator(config, policy=HugePagePolicy.PCC)
        result = simulator.run(
            [make_workload(hot_cold_addresses(repeats=1500))]
        )
        kernel_text = diagnostics.render_kernel(simulator.kernel)
        assert "frames:" in kernel_text
        assert "pid 1:" in kernel_text
        assert "PCC engine:" in kernel_text
        run_text = diagnostics.render_run(result)
        assert "policy=pcc" in run_text
        assert "core 0:" in run_text

    def test_render_kernel_baseline_policy(self, config):
        simulator = Simulator(config, policy=HugePagePolicy.NONE)
        simulator.run([make_workload(hot_cold_addresses(repeats=200))])
        text = diagnostics.render_kernel(simulator.kernel)
        assert "PCC engine" not in text
