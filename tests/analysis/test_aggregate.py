"""Tests for dataset aggregation helpers."""

import math

import pytest

from repro.analysis.aggregate import (
    DATASET_MATRIX,
    DatasetVariant,
    geomean,
    geomean_series,
    matrix_speedups,
)


class TestGeomean:
    def test_simple(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_identity(self):
        assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_below_arithmetic_mean(self):
        values = [1.0, 2.0, 4.0]
        assert geomean(values) < sum(values) / len(values)


class TestGeomeanSeries:
    def test_pointwise(self):
        result = geomean_series([[1.0, 4.0], [4.0, 1.0]])
        assert result == pytest.approx([2.0, 2.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            geomean_series([[1.0], [1.0, 2.0]])


class TestMatrix:
    def test_six_variants(self):
        assert len(DATASET_MATRIX) == 6
        labels = {v.label for v in DATASET_MATRIX}
        assert "kronecker/unsorted" in labels
        assert "web/sorted" in labels

    def test_matrix_speedups(self):
        def run_one(app, variant):
            return 2.0 if variant.sorted_dbg else 1.0

        per_variant, mean = matrix_speedups("BFS", run_one)
        assert per_variant["kronecker/sorted"] == 2.0
        assert mean == pytest.approx(math.sqrt(2.0))

    def test_custom_variants(self):
        variants = (DatasetVariant("kronecker", False),)
        per_variant, mean = matrix_speedups("BFS", lambda a, v: 1.5, variants)
        assert mean == 1.5
        assert list(per_variant) == ["kronecker/unsorted"]
