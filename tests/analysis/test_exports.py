"""Export-surface tests: the documented public API stays importable."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.config",
    "repro.vm",
    "repro.vm.address",
    "repro.vm.layout",
    "repro.vm.pagetable",
    "repro.trace",
    "repro.trace.events",
    "repro.trace.recorder",
    "repro.trace.io",
    "repro.trace.cache",
    "repro.trace.synthesis",
    "repro.tlb",
    "repro.tlb.tlb",
    "repro.tlb.hierarchy",
    "repro.tlb.walker",
    "repro.core",
    "repro.core.pcc",
    "repro.core.dump",
    "repro.os",
    "repro.os.physmem",
    "repro.os.thp",
    "repro.os.hawkeye",
    "repro.os.promotion",
    "repro.os.policies",
    "repro.os.kernel",
    "repro.os.oracle",
    "repro.engine",
    "repro.engine.cpu",
    "repro.engine.timing",
    "repro.engine.simulation",
    "repro.engine.system",
    "repro.engine.offline",
    "repro.engine.schedule_io",
    "repro.workloads",
    "repro.workloads.graph",
    "repro.workloads.gapbase",
    "repro.workloads.bfs",
    "repro.workloads.sssp",
    "repro.workloads.pagerank",
    "repro.workloads.parsec_spec",
    "repro.workloads.phased",
    "repro.workloads.registry",
    "repro.analysis",
    "repro.analysis.reuse",
    "repro.analysis.utility",
    "repro.analysis.report",
    "repro.analysis.plot",
    "repro.analysis.aggregate",
    "repro.analysis.diagnostics",
    "repro.analysis.tracestats",
    "repro.virt",
    "repro.experiments",
    "repro.experiments.common",
    "repro.experiments.fig1",
    "repro.experiments.fig2",
    "repro.experiments.fig5",
    "repro.experiments.fig6",
    "repro.experiments.fig7",
    "repro.experiments.fig8",
    "repro.experiments.fig9",
    "repro.experiments.tables",
    "repro.experiments.ablations",
    "repro.experiments.sensitivity",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module is not None


@pytest.mark.parametrize(
    "module_name",
    [m for m in PUBLIC_MODULES if not m.endswith(("cli",))],
)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


def test_package_all_subpackages_have_init_exports():
    import repro.analysis
    import repro.core
    import repro.os
    import repro.tlb
    import repro.trace
    import repro.virt
    import repro.vm

    for package in (
        repro.vm, repro.trace, repro.tlb, repro.core, repro.os,
        repro.analysis, repro.virt,
    ):
        assert getattr(package, "__all__", None), package.__name__
