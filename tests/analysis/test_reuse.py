"""Tests for reuse-distance computation and HUB classification."""

import numpy as np
import pytest

from repro.analysis.reuse import (
    AccessClass,
    classify_pages,
    profile_trace,
    reuse_distances,
)
from repro.trace.events import Trace


class TestReuseDistances:
    def test_empty(self):
        assert reuse_distances(np.array([], dtype=np.int64)) == {}

    def test_single_access_infinite(self):
        distances = reuse_distances(np.array([5]))
        assert distances[5] == float("inf")

    def test_back_to_back_is_perfect_locality(self):
        # AAA: zero accesses to other pages between uses
        distances = reuse_distances(np.array([7, 7, 7]))
        assert distances[7] == 0.0

    def test_simple_alternation(self):
        # A B A: one access to another page between A's uses
        distances = reuse_distances(np.array([1, 2, 1]))
        assert distances[1] == 1.0

    def test_known_pattern(self):
        # A B C A: distance 2 for A
        distances = reuse_distances(np.array([1, 2, 3, 1]))
        assert distances[1] == 2.0
        assert distances[2] == float("inf")

    def test_mean_over_multiple_reuses(self):
        # B at positions 1 and 5 with A C C between -> distance 3
        distances = reuse_distances(np.array([1, 2, 1, 3, 3, 2]))
        assert distances[2] == 3.0

    def test_mean_of_two_intervals(self):
        # A at positions 0, 2, 5 -> distances 1 and 2, mean 1.5
        distances = reuse_distances(np.array([1, 2, 1, 2, 2, 1]))
        assert distances[1] == 1.5


def build_trace(page_sequence):
    return Trace("t", np.array(page_sequence, dtype=np.uint64) * 4096)


class TestClassification:
    def test_tlb_friendly_low_4k_distance(self):
        # page 0 reused with distance 1 << threshold
        trace = build_trace([0, 1, 0, 1, 0])
        classes = classify_pages(trace, threshold=10)
        assert classes[0] is AccessClass.TLB_FRIENDLY

    def test_hub_high_4k_low_2m(self):
        # pages 0..19 inside ONE 2MB region, cycled: page distance 19,
        # region distance 0 -> with threshold 10: HUB
        sequence = list(range(20)) * 3
        classes = classify_pages(build_trace(sequence), threshold=10)
        assert classes[0] is AccessClass.HUB

    def test_low_reuse_high_both(self):
        # pages spread across many 2MB regions, cycled with long period
        pages = [i * 512 for i in range(20)]  # one page per region
        classes = classify_pages(build_trace(pages * 3), threshold=10)
        assert classes[0] is AccessClass.LOW_REUSE

    def test_single_touch_pages_low_reuse(self):
        classes = classify_pages(build_trace([0, 512, 1024]), threshold=10)
        assert all(c is AccessClass.LOW_REUSE for c in classes.values())


class TestProfile:
    def test_scatter_points_shape(self):
        profile = profile_trace(build_trace([0, 1, 0, 1]), threshold=10)
        points = profile.scatter_points()
        assert len(points) == 2
        x, y, cls = points[0]
        assert isinstance(cls, AccessClass)

    def test_class_counts_total(self):
        profile = profile_trace(build_trace(list(range(20)) * 2), threshold=10)
        counts = profile.class_counts()
        assert sum(counts.values()) == 20

    def test_hub_regions_ranked_by_hub_page_count(self):
        # region 0: 20 hub pages; region 1: 5 hub pages cycled together
        seq = (list(range(20)) + [512, 513, 514, 515, 516]) * 3
        profile = profile_trace(build_trace(seq), threshold=10)
        hubs = profile.hub_regions()
        assert hubs[0] == 0
        assert 1 in hubs

    def test_hub_regions_empty_for_friendly_trace(self):
        profile = profile_trace(build_trace([0, 1] * 50), threshold=10)
        assert profile.hub_regions() == []
