"""Tests for trace statistics."""

import numpy as np
import pytest

from repro.analysis import tracestats
from repro.trace.events import Trace
from repro.vm.layout import AddressSpaceLayout


def make_layout_and_trace():
    layout = AddressSpaceLayout()
    hot = layout.allocate("hot", 1 << 20)
    cold = layout.allocate("cold", 8 << 20)
    addresses = np.concatenate(
        [
            np.full(900, hot.start, dtype=np.uint64),
            np.uint64(cold.start)
            + np.arange(100, dtype=np.uint64) * np.uint64(4096),
        ]
    )
    return layout, Trace("mix", addresses, footprint_bytes=9 << 20)


class TestAnalyze:
    def test_counts(self):
        layout, trace = make_layout_and_trace()
        stats = tracestats.analyze(trace, layout)
        assert stats.accesses == 1000
        assert stats.unique_pages == 101
        assert stats.footprint_bytes == 9 << 20

    def test_vma_shares_ordered_by_heat(self):
        layout, trace = make_layout_and_trace()
        stats = tracestats.analyze(trace, layout)
        assert [s.name for s in stats.vma_shares] == ["hot", "cold"]
        assert stats.vma_shares[0].share == pytest.approx(0.9)
        assert stats.vma_shares[1].touched_pages == 100

    def test_region_skew(self):
        layout, trace = make_layout_and_trace()
        stats = tracestats.analyze(trace, layout)
        # the hot VMA's single region absorbs 90% of accesses
        assert stats.top_decile_region_share >= 0.9

    def test_compression_reflects_locality(self):
        sequential = Trace(
            "seq",
            np.arange(4096, dtype=np.uint64) * np.uint64(64),
        )
        random = Trace(
            "rand",
            (np.arange(4096, dtype=np.uint64) * np.uint64(4096 * 7))
            % np.uint64(1 << 30),
        )
        assert (
            tracestats.analyze(sequential).compression_ratio
            > 10 * tracestats.analyze(random).compression_ratio
        )

    def test_empty_trace(self):
        stats = tracestats.analyze(Trace("e", np.empty(0, dtype=np.uint64)))
        assert stats.accesses == 0
        assert stats.unique_regions == 0
        assert stats.top_decile_region_share == 0.0

    def test_without_layout_no_vma_shares(self):
        _, trace = make_layout_and_trace()
        stats = tracestats.analyze(trace)
        assert stats.vma_shares == []


class TestRender:
    def test_render_includes_table(self):
        layout, trace = make_layout_and_trace()
        text = tracestats.render(tracestats.analyze(trace, layout))
        assert "hot" in text
        assert "compression" in text

    def test_render_without_layout(self):
        _, trace = make_layout_and_trace()
        text = tracestats.render(tracestats.analyze(trace))
        assert "VMA" not in text
