"""Tests for the ASCII plotting helpers."""

import pytest

from repro.analysis.plot import Series, line_plot, utility_plot
from repro.analysis.utility import UtilityCurve, UtilityPoint


class TestLinePlot:
    def test_basic_render(self):
        chart = line_plot(
            [Series("up", [1.0, 2.0, 3.0])],
            width=30,
            height=6,
            x_labels=[0, 50, 100],
        )
        assert "legend: * up" in chart
        assert "3.00" in chart
        assert "1.00" in chart
        assert "100" in chart

    def test_rising_series_slopes_upward(self):
        chart = line_plot([Series("s", [0.0, 10.0])], width=10, height=5)
        rows = [line for line in chart.splitlines() if "|" in line]
        first_col = rows[-1].index("*")
        last_row_of_max = next(i for i, r in enumerate(rows) if "*" in r)
        # the max value sits on the top row, the min on the bottom
        assert last_row_of_max == 0
        assert "*" in rows[-1]
        assert first_col < rows[0].index("*")

    def test_multiple_series_glyphs(self):
        chart = line_plot(
            [Series("a", [1, 2]), Series("b", [2, 1])], width=12, height=4
        )
        assert "*" in chart and "o" in chart
        assert "a" in chart and "b" in chart

    def test_flat_series_does_not_crash(self):
        chart = line_plot([Series("flat", [5.0, 5.0, 5.0])], width=12, height=4)
        assert "flat" in chart

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one series"):
            line_plot([])
        with pytest.raises(ValueError, match="lengths differ"):
            line_plot([Series("a", [1, 2]), Series("b", [1, 2, 3])])
        with pytest.raises(ValueError, match="two points"):
            line_plot([Series("a", [1])])

    def test_custom_bounds(self):
        chart = line_plot(
            [Series("s", [1.0, 2.0])], y_min=0.0, y_max=4.0, width=10, height=4
        )
        assert "4.00" in chart
        assert "0.00" in chart


class TestUtilityPlot:
    def _curve(self, policy, speedups):
        points = [
            UtilityPoint(
                budget_percent=p, budget_regions=p, cycles=100,
                walk_rate=0.1, promotions=0, speedup=s,
            )
            for p, s in zip((0, 50, 100), speedups)
        ]
        return UtilityCurve("w", policy, points=points)

    def test_curves_with_reference(self):
        chart = utility_plot(
            [self._curve("pcc", [1.0, 1.5, 1.8])],
            references={"ideal": 2.0},
        )
        assert "pcc" in chart
        assert "ideal" in chart
        assert "budget" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            utility_plot([])
