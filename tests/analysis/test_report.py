"""Tests for report formatting helpers."""

from repro.analysis import report


class TestFormatTable:
    def test_alignment_and_title(self):
        table = report.format_table(
            ["Name", "Value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1]
        # all rows same width
        assert len(set(len(line) for line in lines[1:])) == 1

    def test_float_formatting(self):
        table = report.format_table(["x"], [[1.23456]])
        assert "1.23" in table


class TestScalars:
    def test_percent(self):
        assert report.percent(0.1534) == "15.3%"
        assert report.percent(0.1534, decimals=0) == "15%"

    def test_speedup(self):
        assert report.speedup(1.279) == "1.28x"

    def test_series(self):
        assert report.series("s", [1.0, 2.5]) == "s: 1.00 2.50"

    def test_bytes_human(self):
        assert report.bytes_human(512) == "512B"
        assert report.bytes_human(2048) == "2.0KB"
        assert report.bytes_human(3 << 20) == "3.0MB"
        assert report.bytes_human(5 << 30) == "5.0GB"
