"""Unit tests for trace persistence."""

import numpy as np
import pytest

from repro.trace.events import Trace
from repro.trace.io import load_trace, save_trace


class TestRoundTrip:
    def test_addresses_preserved(self, tmp_path):
        trace = Trace("rt", np.array([1, 2, 3], dtype=np.uint64), 4096)
        path = save_trace(trace, tmp_path / "trace")
        loaded = load_trace(path)
        assert loaded.name == "rt"
        assert loaded.footprint_bytes == 4096
        assert loaded.addresses.tolist() == [1, 2, 3]

    def test_metadata_round_trip(self, tmp_path):
        trace = Trace(
            "meta",
            np.array([9], dtype=np.uint64),
            metadata={"nodes": np.int64(5), "tags": [1, 2], "ratio": np.float64(0.5)},
        )
        loaded = load_trace(save_trace(trace, tmp_path / "m.npz"))
        assert loaded.metadata == {"nodes": 5, "tags": [1, 2], "ratio": 0.5}

    def test_npz_suffix_appended(self, tmp_path):
        trace = Trace("s", np.array([1], dtype=np.uint64))
        path = save_trace(trace, tmp_path / "bare")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_creates_parent_directories(self, tmp_path):
        trace = Trace("d", np.array([1], dtype=np.uint64))
        path = save_trace(trace, tmp_path / "deep" / "nested" / "t.npz")
        assert path.exists()

    def test_empty_trace_round_trip(self, tmp_path):
        trace = Trace("empty", np.empty(0, dtype=np.uint64))
        loaded = load_trace(save_trace(trace, tmp_path / "e.npz"))
        assert len(loaded) == 0


class TestVersioning:
    def test_future_version_rejected(self, tmp_path):
        import json

        trace = Trace("v", np.array([1], dtype=np.uint64))
        path = save_trace(trace, tmp_path / "v.npz")
        header = {"version": 99, "name": "v", "footprint_bytes": 0, "metadata": {}}
        np.savez_compressed(
            path,
            addresses=trace.addresses,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="version"):
            load_trace(path)
