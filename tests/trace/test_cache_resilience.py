"""Self-healing trace cache: checksums, quarantine, stale recovery.

Satellite coverage for the resilience layer: corrupt entries must be
detected at read time, moved aside (never deleted blind), and rebuilt —
including when two workers race on the same damaged entry.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.resilience.faults import corrupt_file
from repro.trace.cache import (
    CACHE_VERIFY_ENV,
    QUARANTINE_DIR,
    TraceCache,
)

NAME, PARAMS = "unit", {"scale": 3}


def _arrays():
    return {"vpns": np.arange(256, dtype=np.uint64)}


def _builder():
    return _arrays(), {"app": "unit"}


@pytest.fixture
def cache(tmp_path):
    return TraceCache(tmp_path / "cache", verify=True)


def _npy_path(cache):
    return cache._array_path(cache.key(NAME, PARAMS), "vpns")


class TestChecksumVerification:
    def test_round_trip_verifies_clean(self, cache):
        cache.put_entry(NAME, PARAMS, _arrays(), {"app": "unit"})
        entry = cache.get_entry(NAME, PARAMS)
        assert entry is not None
        assert entry.meta == {"app": "unit"}  # bookkeeping keys stripped
        assert entry.arrays["vpns"].tolist() == list(range(256))

    def test_silent_payload_damage_is_caught(self, cache):
        """A flipped byte mid-payload parses fine; only the digest sees it."""
        cache.put_entry(NAME, PARAMS, _arrays(), {})
        path = _npy_path(cache)
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF  # damage data, not the npy header
        path.write_bytes(bytes(blob))
        assert cache.get_entry(NAME, PARAMS) is None
        assert cache.stats.corrupted == 1

    def test_verify_off_skips_the_digest(self, tmp_path):
        trusting = TraceCache(tmp_path / "cache", verify=False)
        trusting.put_entry(NAME, PARAMS, _arrays(), {})
        path = _npy_path(trusting)
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert trusting.get_entry(NAME, PARAMS) is not None

    def test_verify_env_opt_out(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_VERIFY_ENV, "off")
        assert TraceCache(tmp_path).verify is False
        monkeypatch.delenv(CACHE_VERIFY_ENV)
        assert TraceCache(tmp_path).verify is True


class TestQuarantine:
    def test_corrupt_entry_is_moved_not_deleted(self, cache):
        cache.put_entry(NAME, PARAMS, _arrays(), {})
        corrupt_file(_npy_path(cache))
        assert cache.get_entry(NAME, PARAMS) is None
        quarantine = cache.directory / QUARANTINE_DIR
        assert list(quarantine.iterdir())  # preserved for post-mortem
        assert not _npy_path(cache).exists()
        assert cache.stats.quarantined == 1

    def test_rebuild_over_corruption_counts_as_repair(self, cache):
        cache.put_entry(NAME, PARAMS, _arrays(), {})
        corrupt_file(_npy_path(cache))
        entry = cache.get_or_build_entry(NAME, PARAMS, _builder)
        assert entry.arrays["vpns"].tolist() == list(range(256))
        assert cache.stats.repaired == 1
        # and the repaired entry reads clean afterwards
        fresh = TraceCache(cache.directory, verify=True)
        assert fresh.get_entry(NAME, PARAMS) is not None

    def test_clear_and_size_cover_quarantine(self, cache):
        cache.put_entry(NAME, PARAMS, _arrays(), {})
        corrupt_file(_npy_path(cache))
        cache.get_entry(NAME, PARAMS)
        assert cache.size_bytes() > 0
        assert cache.clear() > 0
        assert cache.size_bytes() == 0


class TestRecoverStale:
    def test_dead_writer_tmp_removed(self, cache, tmp_path):
        cache.directory.mkdir(parents=True, exist_ok=True)
        child = multiprocessing.get_context("fork").Process(target=lambda: None)
        child.start()
        child.join()
        debris = cache.directory / f"k.vpns.npy.tmp.{child.pid}"
        debris.write_bytes(b"partial write")
        assert cache.recover_stale() == 1
        assert not debris.exists()
        assert cache.stats.stale_removed == 1

    def test_live_writer_fresh_tmp_retained(self, cache):
        cache.directory.mkdir(parents=True, exist_ok=True)
        mine = cache.directory / f"k.vpns.npy.tmp.{os.getpid()}"
        mine.write_bytes(b"in flight")
        assert cache.recover_stale() == 0
        assert mine.exists()

    def test_over_age_tmp_removed_even_if_writer_alive(self, cache):
        cache.directory.mkdir(parents=True, exist_ok=True)
        old = cache.directory / f"k.vpns.npy.tmp.{os.getpid()}"
        old.write_bytes(b"forgotten")
        ancient = 1_000_000
        os.utime(old, (ancient, ancient))
        assert cache.recover_stale(max_age_seconds=3600.0) == 1


def _race_worker(directory, barrier, queue):
    """One contender: recover the corrupted entry and report success."""
    try:
        barrier.wait(timeout=30)
        cache = TraceCache(directory, verify=True)
        entry = cache.get_or_build_entry(NAME, PARAMS, _builder)
        ok = entry.arrays["vpns"].tolist() == list(range(256))
        queue.put("ok" if ok else "bad-data")
    except Exception as exc:  # pragma: no cover - the failure path
        queue.put(f"{type(exc).__name__}: {exc}")


class TestConcurrentRecovery:
    def test_two_workers_race_on_one_corrupted_entry(self, tmp_path):
        """Both recover; neither deadlocks nor double-deletes (satellite)."""
        directory = tmp_path / "cache"
        seed = TraceCache(directory, verify=True)
        seed.put_entry(NAME, PARAMS, _arrays(), {})
        corrupt_file(seed._array_path(seed.key(NAME, PARAMS), "vpns"))

        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        queue = context.Queue()
        workers = [
            context.Process(target=_race_worker, args=(directory, barrier, queue))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        outcomes = [queue.get(timeout=60) for _ in workers]
        for worker in workers:
            worker.join(timeout=30)
            assert worker.exitcode == 0
        assert outcomes == ["ok", "ok"]
        # the entry left behind is complete and verified
        assert TraceCache(directory, verify=True).get_entry(NAME, PARAMS) is not None
