"""Unit tests for the synthetic pattern generators."""

import numpy as np
import pytest

from repro.trace import synthesis
from repro.vm.layout import VMA

REGION = VMA("r", 0x1000_0000, 1 << 20)


@pytest.fixture
def rng():
    return np.random.default_rng(123)


def assert_within(addresses: np.ndarray, region: VMA):
    assert addresses.size == 0 or (
        int(addresses.min()) >= region.start
        and int(addresses.max()) < region.end
    )


class TestSequential:
    def test_stride_progression(self):
        out = synthesis.sequential(REGION, 4, stride=64)
        assert out.tolist() == [
            REGION.start,
            REGION.start + 64,
            REGION.start + 128,
            REGION.start + 192,
        ]

    def test_wraps_at_region_end(self):
        out = synthesis.sequential((0, 128), 4, stride=64)
        assert out.tolist() == [0, 64, 0, 64]

    def test_zero_count(self):
        assert synthesis.sequential(REGION, 0).size == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            synthesis.sequential(REGION, -1)


class TestStrided:
    def test_start_offset(self):
        out = synthesis.strided(REGION, 2, stride=8, start=16)
        assert out.tolist() == [REGION.start + 16, REGION.start + 24]


class TestUniformRandom:
    def test_bounds_and_alignment(self, rng):
        out = synthesis.uniform_random(REGION, 1000, rng, granularity=64)
        assert_within(out, REGION)
        assert np.all((out - REGION.start) % 64 == 0)

    def test_spreads_across_region(self, rng):
        out = synthesis.uniform_random(REGION, 5000, rng, granularity=4096)
        unique_pages = np.unique(out >> np.uint64(12)).size
        assert unique_pages > 100  # touches much of the 256-page region


class TestZipf:
    def test_bounds(self, rng):
        out = synthesis.zipf_random(REGION, 1000, rng)
        assert_within(out, REGION)

    def test_skew_concentrates_on_low_ranks(self, rng):
        out = synthesis.zipf_random(REGION, 10_000, rng, exponent=1.5)
        offsets = out - REGION.start
        # more than half the accesses land in the first 1% of slots
        assert np.mean(offsets < (1 << 20) // 100) > 0.5

    def test_hot_fraction_limits_support(self, rng):
        out = synthesis.zipf_random(REGION, 1000, rng, hot_fraction=0.01)
        assert int((out - REGION.start).max()) < (1 << 20) // 100 + 64

    def test_invalid_hot_fraction(self, rng):
        with pytest.raises(ValueError):
            synthesis.zipf_random(REGION, 10, rng, hot_fraction=0.0)

    def test_zero_count(self, rng):
        assert synthesis.zipf_random(REGION, 0, rng).size == 0


class TestPointerChase:
    def test_bounds_and_alignment(self, rng):
        out = synthesis.pointer_chase(REGION, 500, rng, node_bytes=64)
        assert_within(out, REGION)
        assert np.all((out - REGION.start) % 64 == 0)

    def test_visits_distinct_nodes_without_restart(self, rng):
        out = synthesis.pointer_chase((0, 64 * 64), 64, rng, node_bytes=64)
        # a cyclic permutation visits each node exactly once per cycle
        assert np.unique(out).size == 64

    def test_restart_changes_path(self, rng):
        out = synthesis.pointer_chase(REGION, 200, rng, node_bytes=64,
                                      restart_every=10)
        assert out.size == 200


class TestHotCold:
    def test_mixture_ratio(self, rng):
        hot = VMA("hot", 0, 1 << 16)
        cold = VMA("cold", 1 << 30, 1 << 20)
        out = synthesis.hot_cold(hot, cold, 10_000, rng, hot_probability=0.8)
        hot_share = np.mean(out < (1 << 16))
        assert 0.75 < hot_share < 0.85

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            synthesis.hot_cold(REGION, REGION, 10, rng, hot_probability=1.5)


class TestDeterminism:
    def test_same_seed_same_output(self):
        a = synthesis.zipf_random(REGION, 100, np.random.default_rng(7))
        b = synthesis.zipf_random(REGION, 100, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_different_seed_different_output(self):
        a = synthesis.uniform_random(REGION, 100, np.random.default_rng(1))
        b = synthesis.uniform_random(REGION, 100, np.random.default_rng(2))
        assert not np.array_equal(a, b)
