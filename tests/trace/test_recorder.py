"""Unit tests for the trace recorder."""

import numpy as np
import pytest

from repro.trace.recorder import TraceRecorder
from repro.vm.layout import AddressSpaceLayout


class TestRecording:
    def test_batches_concatenate_in_order(self):
        recorder = TraceRecorder("t")
        recorder.record(np.array([1, 2], dtype=np.uint64))
        recorder.record(np.array([3], dtype=np.uint64))
        trace = recorder.finish()
        assert trace.addresses.tolist() == [1, 2, 3]

    def test_empty_batches_ignored(self):
        recorder = TraceRecorder("t")
        recorder.record(np.empty(0, dtype=np.uint64))
        assert len(recorder) == 0
        assert len(recorder.finish()) == 0

    def test_record_scalar(self):
        recorder = TraceRecorder("t")
        recorder.record_scalar(42)
        assert recorder.finish().addresses.tolist() == [42]

    def test_record_range(self):
        recorder = TraceRecorder("t")
        recorder.record_range(start=1000, length_bytes=256, stride=64)
        assert recorder.finish().addresses.tolist() == [1000, 1064, 1128, 1192]

    def test_record_range_invalid_stride(self):
        recorder = TraceRecorder("t")
        with pytest.raises(ValueError):
            recorder.record_range(0, 100, stride=0)

    def test_multidimensional_input_flattened(self):
        recorder = TraceRecorder("t")
        recorder.record(np.array([[1, 2], [3, 4]], dtype=np.uint64))
        assert recorder.finish().addresses.tolist() == [1, 2, 3, 4]


class TestFinish:
    def test_footprint_from_layout(self):
        layout = AddressSpaceLayout()
        layout.allocate("a", 12345)
        recorder = TraceRecorder("t", layout)
        trace = recorder.finish()
        assert trace.footprint_bytes == 12345

    def test_vma_metadata_recorded(self):
        layout = AddressSpaceLayout()
        vma = layout.allocate("data", 64)
        recorder = TraceRecorder("t", layout)
        trace = recorder.finish()
        assert trace.metadata["vmas"]["data"] == (vma.start, 64)

    def test_custom_metadata_merged(self):
        recorder = TraceRecorder("t")
        trace = recorder.finish(metadata={"seed": 5})
        assert trace.metadata["seed"] == 5
