"""Unit tests for trace containers and compression."""

import numpy as np
import pytest

from repro.trace.events import CompressedTrace, Trace, compress_to_pages, interleave


class TestCompressToPages:
    def test_empty(self):
        vpns, counts = compress_to_pages(np.empty(0, dtype=np.uint64))
        assert vpns.size == 0
        assert counts.size == 0

    def test_single_page_run(self):
        addresses = np.array([0, 8, 4088], dtype=np.uint64)
        vpns, counts = compress_to_pages(addresses)
        assert vpns.tolist() == [0]
        assert counts.tolist() == [3]

    def test_alternating_pages_do_not_compress(self):
        addresses = np.array([0, 4096, 0, 4096], dtype=np.uint64)
        vpns, counts = compress_to_pages(addresses)
        assert vpns.tolist() == [0, 1, 0, 1]
        assert counts.tolist() == [1, 1, 1, 1]

    def test_mixed_runs(self):
        addresses = np.array([0, 4, 4096, 4100, 4104, 8192], dtype=np.uint64)
        vpns, counts = compress_to_pages(addresses)
        assert vpns.tolist() == [0, 1, 2]
        assert counts.tolist() == [2, 3, 1]

    def test_counts_sum_to_total(self):
        rng = np.random.default_rng(1)
        addresses = rng.integers(0, 1 << 30, size=5000, dtype=np.uint64)
        _, counts = compress_to_pages(addresses)
        assert int(counts.sum()) == 5000


class TestTrace:
    def test_len_and_unique_pages(self):
        trace = Trace("t", np.array([0, 1, 4096], dtype=np.uint64))
        assert len(trace) == 3
        assert trace.unique_pages() == 2

    def test_compress_round_trip_totals(self):
        addresses = np.array([0, 8, 4096, 0], dtype=np.uint64)
        trace = Trace("t", addresses, footprint_bytes=8192)
        compressed = trace.compress()
        assert compressed.total_accesses == 4
        assert compressed.footprint_bytes == 8192
        assert compressed.name == "t"
        assert len(compressed) == 3

    def test_compression_ratio(self):
        addresses = np.zeros(100, dtype=np.uint64)  # one long run
        compressed = Trace("t", addresses).compress()
        assert compressed.compression_ratio == 100.0

    def test_dtype_coercion(self):
        trace = Trace("t", np.array([1, 2, 3], dtype=np.int32))
        assert trace.addresses.dtype == np.uint64

    def test_empty_trace(self):
        trace = Trace("t", np.empty(0, dtype=np.uint64))
        assert len(trace) == 0
        assert trace.unique_pages() == 0
        assert len(trace.compress()) == 0


class TestCompressedTraceValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            CompressedTrace(
                "t",
                vpns=np.array([1, 2], dtype=np.uint64),
                counts=np.array([1], dtype=np.int64),
                total_accesses=2,
            )

    def test_total_mismatch_rejected(self):
        with pytest.raises(ValueError, match="counts sum"):
            CompressedTrace(
                "t",
                vpns=np.array([1], dtype=np.uint64),
                counts=np.array([2], dtype=np.int64),
                total_accesses=3,
            )

    def test_unique_pages(self):
        compressed = CompressedTrace(
            "t",
            vpns=np.array([1, 2, 1], dtype=np.uint64),
            counts=np.array([1, 1, 1], dtype=np.int64),
            total_accesses=3,
        )
        assert compressed.unique_pages() == 2


class TestInterleave:
    def test_round_robin_chunks(self):
        a = np.array([1, 2, 3, 4], dtype=np.uint64)
        b = np.array([10, 20], dtype=np.uint64)
        merged = interleave([a, b], chunk=2)
        assert merged.tolist() == [1, 2, 10, 20, 3, 4]

    def test_empty_input(self):
        assert interleave([], chunk=4).size == 0

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            interleave([np.array([1], dtype=np.uint64)], chunk=0)

    def test_preserves_all_elements(self):
        rng = np.random.default_rng(0)
        streams = [
            rng.integers(0, 100, size=n, dtype=np.uint64) for n in (7, 13, 2)
        ]
        merged = interleave(streams, chunk=3)
        assert merged.size == 22
        assert sorted(merged.tolist()) == sorted(
            np.concatenate(streams).tolist()
        )
