"""Tests for the on-disk trace cache."""

import multiprocessing

import numpy as np
import pytest

from repro.trace.cache import (
    TRACE_GENERATOR_VERSION,
    TraceCache,
    cache_dir_from_env,
    cache_key,
    default_cache_dir,
)
from repro.trace.events import Trace


@pytest.fixture
def cache(tmp_path):
    return TraceCache(tmp_path / "cache")


def make_trace(values=(1, 2, 3)):
    return Trace("t", np.array(values, dtype=np.uint64), footprint_bytes=64)


class TestKey:
    def test_stable(self):
        assert cache_key("bfs", {"scale": 13}) == cache_key("bfs", {"scale": 13})

    def test_order_insensitive(self):
        assert cache_key("x", {"a": 1, "b": 2}) == cache_key("x", {"b": 2, "a": 1})

    def test_distinguishes_params(self):
        assert cache_key("bfs", {"scale": 13}) != cache_key("bfs", {"scale": 14})

    def test_distinguishes_names(self):
        assert cache_key("bfs", {}) != cache_key("sssp", {})


class TestCache:
    def test_miss_returns_none(self, cache):
        assert cache.get("bfs", {"scale": 1}) is None

    def test_round_trip(self, cache):
        cache.put("bfs", {"scale": 1}, make_trace())
        loaded = cache.get("bfs", {"scale": 1})
        assert loaded is not None
        assert loaded.addresses.tolist() == [1, 2, 3]

    def test_get_or_build_builds_once(self, cache):
        calls = []

        def builder():
            calls.append(1)
            return make_trace()

        first = cache.get_or_build("bfs", {"s": 2}, builder)
        second = cache.get_or_build("bfs", {"s": 2}, builder)
        assert len(calls) == 1
        assert np.array_equal(first.addresses, second.addresses)

    def test_corrupt_entry_treated_as_miss(self, cache):
        cache.put("bfs", {"s": 3}, make_trace())
        path = cache._path(cache_key("bfs", {"s": 3}))
        path.write_bytes(b"garbage")
        assert cache.get("bfs", {"s": 3}) is None
        assert not path.exists()  # purged

    def test_clear_and_size(self, cache):
        assert cache.size_bytes() == 0
        cache.put("a", {}, make_trace())
        cache.put("b", {}, make_trace())
        assert cache.size_bytes() > 0
        assert cache.clear() == 2
        assert cache.size_bytes() == 0

    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_env_disables_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        assert cache_dir_from_env() is None
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "d"))
        assert cache_dir_from_env() == tmp_path / "d"


class TestGeneratorVersion:
    """Bumping the generator version must invalidate every old key."""

    def test_version_baked_into_key(self):
        old = cache_key("bfs", {"scale": 13}, generator_version=1)
        new = cache_key("bfs", {"scale": 13}, generator_version=2)
        assert old != new

    def test_old_entries_unreachable_after_bump(self, tmp_path):
        old_cache = TraceCache(tmp_path, generator_version=1)
        old_cache.put("bfs", {"scale": 1}, make_trace())
        assert old_cache.get("bfs", {"scale": 1}) is not None

        new_cache = TraceCache(tmp_path, generator_version=2)
        assert new_cache.get("bfs", {"scale": 1}) is None

    def test_default_version_is_current(self, tmp_path):
        cache = TraceCache(tmp_path)
        assert cache.generator_version == TRACE_GENERATOR_VERSION


class TestArrayEntries:
    """The mmap-friendly multi-array entry format."""

    def test_round_trip_with_meta(self, cache):
        arrays = {
            "vpns": np.arange(16, dtype=np.uint64),
            "counts": np.ones(16, dtype=np.int64),
        }
        cache.put_entry("bfs", {"s": 1}, arrays, meta={"footprint": 4096})
        entry = cache.get_entry("bfs", {"s": 1})
        assert entry is not None
        assert entry.meta == {"footprint": 4096}
        assert np.array_equal(entry.arrays["vpns"], arrays["vpns"])
        assert np.array_equal(entry.arrays["counts"], arrays["counts"])

    def test_mmap_entries_are_read_only_views(self, cache):
        cache.put_entry("bfs", {"s": 2}, {"vpns": np.arange(8, dtype=np.uint64)})
        entry = cache.get_entry("bfs", {"s": 2}, mmap=True)
        assert isinstance(entry.arrays["vpns"], np.memmap)
        with pytest.raises((ValueError, OSError)):
            entry.arrays["vpns"][0] = 99

    def test_torn_entry_missing_array_is_purged(self, cache):
        """Commit record present, payload gone: purge + miss."""
        cache.put_entry("bfs", {"s": 3}, {"vpns": np.arange(4, dtype=np.uint64)})
        key = cache.key("bfs", {"s": 3})
        cache._array_path(key, "vpns").unlink()
        assert cache.get_entry("bfs", {"s": 3}) is None
        assert not cache._meta_path(key).exists()
        assert cache.stats.purged == 1

    def test_truncated_array_is_purged(self, cache):
        cache.put_entry("bfs", {"s": 4}, {"vpns": np.arange(64, dtype=np.uint64)})
        key = cache.key("bfs", {"s": 4})
        path = cache._array_path(key, "vpns")
        path.write_bytes(path.read_bytes()[:40])
        assert cache.get_entry("bfs", {"s": 4}) is None
        assert not path.exists()

    def test_corrupt_meta_json_is_purged(self, cache):
        cache.put_entry("bfs", {"s": 5}, {"vpns": np.arange(4, dtype=np.uint64)})
        key = cache.key("bfs", {"s": 5})
        cache._meta_path(key).write_text("{not json")
        assert cache.get_entry("bfs", {"s": 5}) is None
        assert not cache._meta_path(key).exists()

    def test_get_or_build_entry_builds_once(self, cache):
        calls = []

        def builder():
            calls.append(1)
            return {"vpns": np.arange(4, dtype=np.uint64)}, {"n": 4}

        first = cache.get_or_build_entry("bfs", {"s": 6}, builder)
        second = cache.get_or_build_entry("bfs", {"s": 6}, builder)
        assert len(calls) == 1
        assert first.meta == second.meta == {"n": 4}

    def test_stats_track_hits_misses_writes(self, cache):
        cache.get_entry("bfs", {"s": 7})
        cache.put_entry("bfs", {"s": 7}, {"vpns": np.arange(2, dtype=np.uint64)})
        cache.get_entry("bfs", {"s": 7})
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5
        snapshot = cache.stats.as_dict()
        assert snapshot["hits"] == 1 and snapshot["hit_rate"] == 0.5


def _racing_writer(directory: str, worker: int) -> bool:
    """Write the same entry from a worker process, then read it back."""
    cache = TraceCache(directory)
    arrays = {"vpns": np.arange(256, dtype=np.uint64)}
    cache.put_entry("race", {"seed": 1}, arrays, meta={"n": 256})
    entry = cache.get_entry("race", {"seed": 1}, mmap=False)
    return entry is not None and np.array_equal(entry.arrays["vpns"], arrays["vpns"])


class TestConcurrentWriters:
    def test_parallel_writers_publish_atomically(self, tmp_path):
        """N processes racing to write one key must leave an intact entry.

        Deterministic generation means every writer produces identical
        bytes; atomic rename means last-writer-wins is indistinguishable
        from any-writer-wins, and no reader ever sees a torn file.
        """
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            ok = pool.starmap(
                _racing_writer, [(str(tmp_path), i) for i in range(8)]
            )
        assert all(ok)
        cache = TraceCache(tmp_path)
        entry = cache.get_entry("race", {"seed": 1})
        assert entry is not None
        # no stray temporaries left behind
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_publish_cleans_up_on_writer_crash(self, cache, tmp_path):
        """A writer that dies mid-write leaves no visible entry."""

        def explode(tmp):
            tmp.write_bytes(b"partial")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            cache._publish(cache._meta_path("deadbeef"), explode)
        assert not cache._meta_path("deadbeef").exists()
        assert not list(cache.directory.glob("*.tmp.*"))

    def test_meta_is_committed_last(self, cache, monkeypatch):
        """put_entry publishes payloads before the commit record."""
        order = []
        original = TraceCache._publish

        def recording(self, path, write_fn):
            order.append(path.name.split(".", 1)[1])
            return original(self, path, write_fn)

        monkeypatch.setattr(TraceCache, "_publish", recording)
        cache.put_entry(
            "bfs", {"s": 8},
            {"a": np.arange(2, dtype=np.uint64),
             "b": np.arange(2, dtype=np.uint64)},
        )
        assert order[-1] == "meta.json"
        assert set(order[:-1]) == {"a.npy", "b.npy"}
