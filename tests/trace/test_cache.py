"""Tests for the on-disk trace cache."""

import numpy as np
import pytest

from repro.trace.cache import TraceCache, cache_key, default_cache_dir
from repro.trace.events import Trace


@pytest.fixture
def cache(tmp_path):
    return TraceCache(tmp_path / "cache")


def make_trace(values=(1, 2, 3)):
    return Trace("t", np.array(values, dtype=np.uint64), footprint_bytes=64)


class TestKey:
    def test_stable(self):
        assert cache_key("bfs", {"scale": 13}) == cache_key("bfs", {"scale": 13})

    def test_order_insensitive(self):
        assert cache_key("x", {"a": 1, "b": 2}) == cache_key("x", {"b": 2, "a": 1})

    def test_distinguishes_params(self):
        assert cache_key("bfs", {"scale": 13}) != cache_key("bfs", {"scale": 14})

    def test_distinguishes_names(self):
        assert cache_key("bfs", {}) != cache_key("sssp", {})


class TestCache:
    def test_miss_returns_none(self, cache):
        assert cache.get("bfs", {"scale": 1}) is None

    def test_round_trip(self, cache):
        cache.put("bfs", {"scale": 1}, make_trace())
        loaded = cache.get("bfs", {"scale": 1})
        assert loaded is not None
        assert loaded.addresses.tolist() == [1, 2, 3]

    def test_get_or_build_builds_once(self, cache):
        calls = []

        def builder():
            calls.append(1)
            return make_trace()

        first = cache.get_or_build("bfs", {"s": 2}, builder)
        second = cache.get_or_build("bfs", {"s": 2}, builder)
        assert len(calls) == 1
        assert np.array_equal(first.addresses, second.addresses)

    def test_corrupt_entry_treated_as_miss(self, cache):
        cache.put("bfs", {"s": 3}, make_trace())
        path = cache._path(cache_key("bfs", {"s": 3}))
        path.write_bytes(b"garbage")
        assert cache.get("bfs", {"s": 3}) is None
        assert not path.exists()  # purged

    def test_clear_and_size(self, cache):
        assert cache.size_bytes() == 0
        cache.put("a", {}, make_trace())
        cache.put("b", {}, make_trace())
        assert cache.size_bytes() > 0
        assert cache.clear() == 2
        assert cache.size_bytes() == 0

    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
