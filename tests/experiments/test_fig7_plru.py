"""Fig. 7's TLB-replacement ablation axis: spec threading + rendering.

The full sweep is exercised by the benchmark CI job; here we pin the
plumbing — ``tlb_replacement`` must survive from the CLI through
``RunSpec`` into the built machine config, distinguish journal keys,
and label the rendered table — without paying for a simulation run.
"""

from repro.experiments import fig7
from repro.experiments.common import QUICK, RunSpec, execute_spec
from repro.os.kernel import HugePagePolicy


def test_runspec_carries_and_applies_the_replacement_policy():
    spec = RunSpec.for_scale(
        QUICK, "BFS", HugePagePolicy.NONE, tlb_replacement="plru"
    )
    assert spec.tlb_replacement == "plru"
    # the spec is frozen and hashable — journal keys must distinguish
    # an lru run from a plru run of the same configuration
    lru_spec = RunSpec.for_scale(QUICK, "BFS", HugePagePolicy.NONE)
    assert lru_spec.tlb_replacement == "lru"
    assert spec != lru_spec


def test_fig7_builds_one_spec_set_per_replacement(monkeypatch):
    captured = {}

    def fake_run_specs(specs, jobs, resume=False):
        captured["specs"] = specs

        class _Result:
            total_cycles = 100

        return [_Result() for _ in specs]

    monkeypatch.setattr(fig7, "run_specs", fake_run_specs)
    fig7.run(QUICK, apps=("BFS",), tlb_replacement="plru")
    specs = captured["specs"]
    assert len(specs) == 5
    assert all(spec.tlb_replacement == "plru" for spec in specs)
    fig7.run(QUICK, apps=("BFS",))
    assert all(
        spec.tlb_replacement == "lru" for spec in captured["specs"]
    )


def test_execute_spec_applies_the_policy_to_the_machine(monkeypatch):
    import repro.experiments.common as common

    seen = {}

    def fake_run_policy(workload, policy, config, **kwargs):
        seen["replacement"] = config.tlb.l1_base.replacement
        return "result"

    monkeypatch.setattr(common, "run_policy", fake_run_policy)
    spec = RunSpec(
        app="BFS",
        policy=HugePagePolicy.NONE.value,
        graph_scale=10,
        proxy_accesses=20_000,
        tlb_replacement="plru",
    )
    assert execute_spec(spec) == "result"
    assert seen["replacement"] == "plru"


def test_render_labels_the_plru_axis():
    rows = [fig7.Fig7Row("BFS", 1.1, 1.0, 1.2, 1.2)]
    assert "PLRU TLBs" in fig7.render(rows, tlb_replacement="plru")
    assert "PLRU" not in fig7.render(rows)
