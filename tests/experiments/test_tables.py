"""Direct unit tests for the Table 1 / Table 2 experiment module.

The integration sweep only asserts the tables render; these tests pin
the row inventory, the per-row field contracts, and that Table 2
faithfully reflects the configuration it is given.
"""

import pytest

from repro.config import tiny_config
from repro.experiments import tables
from repro.experiments.common import ExperimentScale
from repro.workloads.registry import (
    GRAPH_WORKLOADS,
    PROXY_WORKLOADS,
    workload_names,
)

TINY = ExperimentScale(name="tiny", graph_scale=9, proxy_accesses=20_000)


@pytest.fixture(scope="module")
def rows():
    return tables.run_table1(TINY)


def test_table1_inventory_matches_the_registry(rows):
    expected = len(GRAPH_WORKLOADS) * 3 + len(PROXY_WORKLOADS)
    assert len(rows) == expected
    assert {r.app for r in rows} == set(workload_names())


def test_table1_graph_rows_carry_graph_statistics(rows):
    for row in rows:
        if row.app in GRAPH_WORKLOADS:
            assert row.dataset in ("kronecker", "social", "web")
            assert row.nodes > 0
            assert row.edges > 0
        else:
            assert row.dataset == "native"
            assert row.nodes == 0
            assert row.edges == 0


def test_table1_every_workload_has_a_footprint_and_accesses(rows):
    for row in rows:
        assert row.footprint_bytes > 0, row.app
        assert row.accesses > 0, row.app


def test_table1_render_lists_every_app(rows):
    text = tables.render_table1(rows)
    assert "Table 1" in text
    for app in workload_names():
        assert app in text
    # proxy rows render graph stats as placeholders, not zeros
    assert " - " in text or "-" in text


def test_table2_reflects_the_given_configuration():
    config = tiny_config()
    text = tables.render_table2(config)
    assert "Table 2" in text
    tlb = config.tlb
    assert f"{tlb.l1_base.entries} entries, {tlb.l1_base.ways}-way" in text
    assert f"{tlb.l2.entries} entries, {tlb.l2.ways}-way" in text
    assert f"{config.pcc.entries} entries, fully associative" in text
    assert f"{config.pcc.counter_bits}-bit saturating" in text
    assert f"{config.os.promote_every_accesses} accesses" in text
    assert str(config.cores) in text


def test_table2_defaults_to_the_paper_machine():
    from repro.config import paper_config

    assert tables.render_table2() == tables.render_table2(paper_config())
