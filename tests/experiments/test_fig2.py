"""Direct unit tests for the Figure 2 reuse-distance experiment.

The integration suite only smoke-runs ``fig2.run`` inside the full
sweep; these tests pin down the experiment's own contract — the
classification bookkeeping, the HUB/property-array attribution, the
threshold semantics, and the rendering.
"""

import pytest

from repro.analysis.reuse import AccessClass
from repro.experiments import fig2
from repro.experiments.common import ExperimentScale

TINY = ExperimentScale(name="tiny", graph_scale=9, proxy_accesses=20_000)


@pytest.fixture(scope="module")
def result():
    return fig2.run(TINY)


def test_counts_cover_every_profiled_page(result):
    assert sum(result.counts.values()) == len(result.profile.pages)
    assert set(result.counts) <= set(AccessClass)
    assert all(count >= 0 for count in result.counts.values())


def test_hub_bookkeeping_is_consistent(result):
    assert result.hub_region_count == len(result.profile.hub_regions())
    assert 0.0 <= result.hub_in_properties <= 1.0
    if result.hub_region_count == 0:
        assert result.hub_in_properties == 0.0


def test_hub_phenomenon_present_in_bfs(result):
    """The paper's central observation: BFS has a HUB population."""
    assert result.counts.get(AccessClass.HUB, 0) > 0
    assert result.hub_region_count > 0
    # HUB pages concentrate in the per-vertex property arrays
    assert result.hub_in_properties > 0.0


def test_run_is_deterministic():
    a, b = fig2.run(TINY), fig2.run(TINY)
    assert a.counts == b.counts
    assert a.hub_region_count == b.hub_region_count
    assert a.hub_in_properties == b.hub_in_properties


def test_infinite_threshold_makes_every_reused_page_tlb_friendly():
    """threshold semantics: finite distance < threshold => TLB-friendly.

    Pages touched exactly once report an ``inf`` reuse distance, so no
    threshold can make them TLB-friendly; everything else must be.
    """
    import math

    result = fig2.run(TINY, threshold=1 << 60)
    total = sum(result.counts.values())
    touched_once = sum(
        1 for distance in result.profile.pages.values()
        if math.isinf(distance)
    )
    assert result.counts[AccessClass.TLB_FRIENDLY] == total - touched_once


def test_tighter_threshold_moves_pages_out_of_tlb_friendly(result):
    tight = fig2.run(TINY, threshold=64)
    assert (
        tight.counts[AccessClass.TLB_FRIENDLY]
        <= result.counts[AccessClass.TLB_FRIENDLY]
    )


def test_render_reports_every_class_and_the_hub_line(result):
    text = fig2.render(result)
    assert "Fig. 2" in text
    for cls in result.counts:
        assert cls.value in text
    assert "HUB regions" in text
    assert str(result.hub_region_count) in text
    assert "%" in text
