"""Tests for the virtualization extension (§5.4.3)."""

import pytest

from repro.config import PCCConfig
from repro.os.physmem import PhysicalMemory
from repro.vm.address import HUGE_PAGE_SIZE, PageSize
from repro.virt import Hypervisor, TaggedPCC, World


@pytest.fixture
def pcc():
    return TaggedPCC(PCCConfig(entries=8))


@pytest.fixture
def hypervisor():
    return Hypervisor(PhysicalMemory(16 * HUGE_PAGE_SIZE))


class TestTaggedPCC:
    def test_guest_and_host_entries_distinct(self, pcc):
        pcc.access(World.GUEST, vm_id=1, tag=100)
        pcc.access(World.HOST, vm_id=1, tag=100)
        guest = pcc.ranked(World.GUEST)
        host = pcc.ranked(World.HOST)
        assert len(guest) == 1 and len(host) == 1
        assert guest[0].tag == host[0].tag == 100
        assert len(pcc) == 2

    def test_vm_filter(self, pcc):
        pcc.access(World.GUEST, vm_id=1, tag=5)
        pcc.access(World.GUEST, vm_id=2, tag=5)
        assert len(pcc.ranked(World.GUEST, vm_id=1)) == 1
        assert pcc.ranked(World.GUEST, vm_id=2)[0].vm_id == 2

    def test_frequency_ordering_preserved(self, pcc):
        for _ in range(4):
            pcc.access(World.GUEST, 1, 7)
        pcc.access(World.GUEST, 1, 9)
        ranked = pcc.ranked(World.GUEST)
        assert [e.tag for e in ranked] == [7, 9]

    def test_shared_capacity_across_worlds(self):
        pcc = TaggedPCC(PCCConfig(entries=2))
        pcc.access(World.GUEST, 1, 1)
        pcc.access(World.HOST, 1, 2)
        pcc.access(World.GUEST, 2, 3)  # evicts one of the first two
        assert len(pcc) == 2

    def test_invalidate(self, pcc):
        pcc.access(World.HOST, 1, 42)
        assert pcc.invalidate(World.HOST, 1, 42)
        assert not pcc.invalidate(World.HOST, 1, 42)
        assert pcc.ranked(World.HOST) == []

    def test_flush_returns_tagged_entries(self, pcc):
        pcc.access(World.GUEST, 3, 11)
        dumped = pcc.flush()
        assert dumped[0].world is World.GUEST
        assert dumped[0].vm_id == 3
        assert dumped[0].tag == 11
        assert len(pcc) == 0

    def test_vm_id_range_checked(self, pcc):
        with pytest.raises(ValueError):
            pcc.access(World.GUEST, vm_id=256, tag=1)


class TestHypervisor:
    def test_register_twice_rejected(self, hypervisor):
        hypervisor.register_vm(1)
        with pytest.raises(ValueError):
            hypervisor.register_vm(1)

    def test_default_backing_is_base(self, hypervisor):
        hypervisor.register_vm(1)
        hypervisor.back_region_base(1, gpa_region=5)
        assert hypervisor.host_page_size(1, 5) is PageSize.BASE

    def test_hypercall_promotes_host_side(self, hypervisor):
        hypervisor.register_vm(1)
        hypervisor.back_region_base(1, 5)
        assert hypervisor.hypercall_promote(1, 5)
        assert hypervisor.host_page_size(1, 5) is PageSize.HUGE
        assert hypervisor.stats.host_promotions == 1
        assert hypervisor.vm_huge_regions(1) == [5]

    def test_hypercall_idempotent(self, hypervisor):
        hypervisor.register_vm(1)
        hypervisor.hypercall_promote(1, 5)
        assert hypervisor.hypercall_promote(1, 5)
        assert hypervisor.stats.host_promotions == 1

    def test_hypercall_fails_without_host_contiguity(self):
        memory = PhysicalMemory(2 * HUGE_PAGE_SIZE)
        memory.fragment(1.0)
        hypervisor = Hypervisor(memory)
        hypervisor.register_vm(1)
        assert not hypervisor.hypercall_promote(1, 5)
        assert hypervisor.stats.host_promotion_failures == 1

    def test_vms_compete_for_host_frames(self):
        memory = PhysicalMemory(2 * HUGE_PAGE_SIZE)
        hypervisor = Hypervisor(memory)
        hypervisor.register_vm(1)
        hypervisor.register_vm(2)
        assert hypervisor.hypercall_promote(1, 0)
        assert hypervisor.hypercall_promote(1, 1)
        assert not hypervisor.hypercall_promote(2, 0)


class TestNestedComposition:
    def test_effective_size_needs_both_sides(self, hypervisor):
        hypervisor.register_vm(1)
        hypervisor.back_region_base(1, 7)
        # guest promoted, host still base -> effectively base (§5.4.3)
        assert (
            hypervisor.effective_page_size(1, 7, PageSize.HUGE)
            is PageSize.BASE
        )
        hypervisor.hypercall_promote(1, 7)
        assert (
            hypervisor.effective_page_size(1, 7, PageSize.HUGE)
            is PageSize.HUGE
        )

    def test_guest_base_never_huge(self, hypervisor):
        hypervisor.register_vm(1)
        hypervisor.hypercall_promote(1, 7)
        assert (
            hypervisor.effective_page_size(1, 7, PageSize.BASE)
            is PageSize.BASE
        )


class TestCoPromotion:
    def test_full_flow(self, hypervisor):
        hypervisor.register_vm(1)
        outcome = hypervisor.co_promote(1, 9, guest_promote=lambda: True)
        assert outcome.guest_promoted
        assert outcome.host_promoted
        assert outcome.effective_page_size is PageSize.HUGE
        assert hypervisor.stats.hypercalls == 1

    def test_guest_failure_skips_hypercall(self, hypervisor):
        hypervisor.register_vm(1)
        outcome = hypervisor.co_promote(1, 9, guest_promote=lambda: False)
        assert not outcome.guest_promoted
        assert not outcome.host_promoted
        assert outcome.effective_page_size is PageSize.BASE
        assert hypervisor.stats.hypercalls == 0

    def test_host_failure_leaves_base_effective(self):
        memory = PhysicalMemory(2 * HUGE_PAGE_SIZE)
        memory.fragment(1.0)
        hypervisor = Hypervisor(memory)
        hypervisor.register_vm(1)
        outcome = hypervisor.co_promote(1, 9, guest_promote=lambda: True)
        assert outcome.guest_promoted
        assert not outcome.host_promoted
        assert outcome.effective_page_size is PageSize.BASE
