"""Unit tests for the Promotion Candidate Cache."""

import pytest

from repro.config import PCCConfig
from repro.core.pcc import PromotionCandidateCache


def make_pcc(entries=4, counter_bits=8, replacement="lfu"):
    return PromotionCandidateCache(
        PCCConfig(entries=entries, counter_bits=counter_bits,
                  replacement=replacement)
    )


class TestConfigValidation:
    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            PCCConfig(entries=0)

    def test_rejects_bad_counter_bits(self):
        with pytest.raises(ValueError):
            PCCConfig(counter_bits=0)
        with pytest.raises(ValueError):
            PCCConfig(counter_bits=33)

    def test_rejects_unknown_replacement(self):
        with pytest.raises(ValueError):
            PCCConfig(replacement="random")

    def test_counter_max(self):
        assert PCCConfig(counter_bits=8).counter_max == 255
        assert PCCConfig(counter_bits=4).counter_max == 15

    def test_capacity_override(self):
        pcc = PromotionCandidateCache(PCCConfig(entries=128), capacity=8)
        assert pcc.capacity == 8

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PromotionCandidateCache(PCCConfig(entries=4), capacity=0)


class TestInsertion:
    def test_miss_inserts_with_frequency_zero(self):
        pcc = make_pcc()
        entry = pcc.access(100)
        assert entry.frequency == 0
        assert 100 in pcc
        assert len(pcc) == 1

    def test_hit_increments(self):
        pcc = make_pcc()
        pcc.access(100)
        entry = pcc.access(100)
        assert entry.frequency == 1
        assert pcc.frequency_of(100) == 1

    def test_stats(self):
        pcc = make_pcc()
        pcc.access(1)
        pcc.access(1)
        pcc.access(2)
        assert pcc.stats.accesses == 3
        assert pcc.stats.hits == 1
        assert pcc.stats.misses == 2
        assert pcc.stats.insertions == 2

    def test_promoted_leaf_flag_sticks(self):
        pcc = make_pcc()
        pcc.access(1, promoted_leaf=False)
        pcc.access(1, promoted_leaf=True)
        entry = pcc.access(1, promoted_leaf=False)
        assert entry.promoted_leaf


class TestEviction:
    def test_capacity_never_exceeded(self):
        pcc = make_pcc(entries=4)
        for tag in range(20):
            pcc.access(tag)
        assert len(pcc) == 4

    def test_lfu_evicts_least_frequent(self):
        pcc = make_pcc(entries=2)
        pcc.access(1)
        pcc.access(1)  # freq 1
        pcc.access(2)  # freq 0
        pcc.access(3)  # evicts 2
        assert 1 in pcc
        assert 2 not in pcc
        assert 3 in pcc

    def test_lru_tiebreak_among_equal_frequencies(self):
        pcc = make_pcc(entries=3)
        pcc.access(1)
        pcc.access(2)
        pcc.access(3)
        pcc.access(4)  # all freq 0: evict the least recent = 1
        assert 1 not in pcc
        assert {2, 3, 4} <= pcc._entries.keys()

    def test_hit_refreshes_recency_for_tiebreak(self):
        pcc = make_pcc(entries=2, counter_bits=8)
        pcc.access(1)
        pcc.access(2)
        # both freq 0... hit 1 to make it freq 1; then fill
        pcc.access(1)
        pcc.access(3)  # evicts 2 (freq 0)
        assert 1 in pcc
        assert 2 not in pcc

    def test_pure_lru_policy(self):
        pcc = make_pcc(entries=2, replacement="lru")
        pcc.access(1)
        pcc.access(1)  # high frequency, but old
        pcc.access(2)
        pcc.access(3)  # pure LRU evicts 1 despite its frequency
        assert 1 not in pcc
        assert 2 in pcc

    def test_eviction_stats(self):
        pcc = make_pcc(entries=1)
        pcc.access(1)
        pcc.access(2)
        assert pcc.stats.evictions == 1


class TestSaturationDecay:
    def test_counter_saturates_at_max(self):
        pcc = make_pcc(entries=2, counter_bits=2)  # max 3
        for _ in range(10):
            entry = pcc.access(7)
        assert entry.frequency <= 3

    def test_decay_halves_all_counters(self):
        pcc = make_pcc(entries=2, counter_bits=3)  # max 7
        for _ in range(8):
            pcc.access(1)  # reaches 7
        pcc.access(2)
        pcc.access(2)  # freq 1
        pcc.access(1)  # saturation: halve all, then increment
        # after halving 7 -> 3, +1 = 4; tag 2: 1 -> 0
        assert pcc.frequency_of(1) == 4
        assert pcc.frequency_of(2) == 0
        assert pcc.stats.decays == 1

    def test_decay_preserves_relative_order(self):
        pcc = make_pcc(entries=3, counter_bits=4)
        for _ in range(16):
            pcc.access(1)
        for _ in range(8):
            pcc.access(2)
        pcc.access(3)
        ranked = [e.tag for e in pcc.ranked()]
        assert ranked == [1, 2, 3]


class TestRankingAndDump:
    def test_ranked_by_frequency_descending(self):
        pcc = make_pcc()
        pcc.access(10)
        for _ in range(3):
            pcc.access(20)
        for _ in range(2):
            pcc.access(30)
        assert [e.tag for e in pcc.ranked()] == [20, 30, 10]

    def test_flush_returns_ranked_and_clears(self):
        pcc = make_pcc()
        pcc.access(1)
        pcc.access(1)
        pcc.access(2)
        dumped = pcc.flush()
        assert [e.tag for e in dumped] == [1, 2]
        assert len(pcc) == 0

    def test_frequency_of_absent(self):
        assert make_pcc().frequency_of(99) is None


class TestInvalidation:
    def test_invalidate_present(self):
        pcc = make_pcc()
        pcc.access(5)
        assert pcc.invalidate(5)
        assert 5 not in pcc
        assert pcc.stats.invalidations == 1

    def test_invalidate_absent(self):
        pcc = make_pcc()
        assert not pcc.invalidate(5)

    def test_invalidated_tag_reinserts_cold(self):
        pcc = make_pcc()
        for _ in range(5):
            pcc.access(5)
        pcc.invalidate(5)
        entry = pcc.access(5)
        assert entry.frequency == 0


class TestStorageOverheads:
    def test_paper_storage_figures(self):
        """§3.2.1: 128 x (40-bit tag + 8-bit counter) = 768 bytes."""
        pcc = PromotionCandidateCache(PCCConfig(entries=128))
        assert pcc.storage_bits(tag_bits=40) == 768 * 8

    def test_1gb_pcc_storage(self):
        """8 x (31-bit tag + 8-bit counter) = 39 bytes (paper rounds to 40)."""
        pcc = PromotionCandidateCache(PCCConfig(entries=128), capacity=8)
        assert pcc.storage_bits(tag_bits=31) == 8 * 39
