"""Unit tests for the PCC dump region."""

from repro.config import PCCConfig
from repro.core.dump import CandidateRecord, DumpRegion
from repro.core.pcc import PromotionCandidateCache
from repro.vm.address import PageSize


def ranked_entries(tags_with_freq):
    pcc = PromotionCandidateCache(PCCConfig(entries=16))
    for tag, freq in tags_with_freq:
        for _ in range(freq + 1):
            pcc.access(tag)
    return pcc.ranked()


class TestWrite:
    def test_preserves_priority_order(self):
        region = DumpRegion()
        entries = ranked_entries([(1, 5), (2, 9), (3, 1)])
        region.write(entries, pid=1, core=0)
        records = region.read_all()
        assert [r.tag for r in records] == [2, 1, 3]

    def test_records_carry_identity(self):
        region = DumpRegion()
        region.write(ranked_entries([(7, 0)]), pid=42, core=3)
        record = region.read_all()[0]
        assert record.pid == 42
        assert record.core == 3
        assert record.page_size is PageSize.HUGE

    def test_capacity_bound_drops_overflow(self):
        region = DumpRegion(capacity_records=2)
        entries = ranked_entries([(1, 1), (2, 2), (3, 3)])
        written = region.write(entries, pid=1, core=0)
        assert written == 2
        assert region.dropped == 1

    def test_read_all_drains(self):
        region = DumpRegion()
        region.write(ranked_entries([(1, 0)]), pid=1, core=0)
        assert len(region) == 1
        region.read_all()
        assert len(region) == 0
        assert region.read_all() == []


class TestCandidateRecord:
    def test_vaddr_reconstruction_2mb(self):
        record = CandidateRecord(pid=1, core=0, tag=3, frequency=0)
        assert record.vaddr == 3 << 21

    def test_vaddr_reconstruction_1gb(self):
        record = CandidateRecord(
            pid=1, core=0, tag=3, frequency=0, page_size=PageSize.GIGA
        )
        assert record.vaddr == 3 << 30
