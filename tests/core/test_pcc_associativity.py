"""Tests for the set-associative PCC variant (§3.2.1 ablation)."""

import pytest

from repro.config import PCCConfig
from repro.core.pcc import PromotionCandidateCache


def make_pcc(entries=8, ways=2):
    return PromotionCandidateCache(
        PCCConfig(entries=entries, associativity=ways)
    )


class TestConfig:
    def test_indivisible_ways_rejected(self):
        with pytest.raises(ValueError):
            PCCConfig(entries=6, associativity=4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PCCConfig(associativity=-1)

    def test_zero_is_fully_associative(self):
        pcc = PromotionCandidateCache(PCCConfig(entries=8, associativity=0))
        assert pcc._sets == 1


class TestSetConflicts:
    def test_conflicting_tags_evict_within_set(self):
        # 8 entries, 2-way: 4 sets; tags 0, 4, 8 collide in set 0
        pcc = make_pcc(entries=8, ways=2)
        pcc.access(0)
        pcc.access(4)
        pcc.access(8)  # conflict eviction despite 5 free slots elsewhere
        assert pcc.stats.evictions == 1
        assert len(pcc) == 2
        assert 8 in pcc

    def test_non_conflicting_tags_coexist(self):
        pcc = make_pcc(entries=8, ways=2)
        for tag in range(8):  # tags 0..7 spread over 4 sets, 2 each
            pcc.access(tag)
        assert len(pcc) == 8
        assert pcc.stats.evictions == 0

    def test_victim_chosen_within_set_by_lfu(self):
        pcc = make_pcc(entries=8, ways=2)
        pcc.access(0)
        pcc.access(0)  # hot in set 0
        pcc.access(4)  # cold in set 0
        pcc.access(1)  # hot-ish in set 1; must not be the victim
        pcc.access(1)
        pcc.access(8)  # set 0 conflict: evicts 4, not 0 or 1
        assert 0 in pcc
        assert 1 in pcc
        assert 4 not in pcc

    def test_invalidate_frees_set_slot(self):
        pcc = make_pcc(entries=8, ways=2)
        pcc.access(0)
        pcc.access(4)
        pcc.invalidate(0)
        pcc.access(8)  # fits without eviction now
        assert pcc.stats.evictions == 0

    def test_flush_resets_set_fill(self):
        pcc = make_pcc(entries=8, ways=2)
        pcc.access(0)
        pcc.access(4)
        pcc.flush()
        pcc.access(8)
        pcc.access(12)
        assert pcc.stats.evictions == 0


class TestEquivalenceWhenFull:
    def test_full_associativity_matches_legacy_behaviour(self):
        full = PromotionCandidateCache(PCCConfig(entries=4, associativity=0))
        wide = PromotionCandidateCache(PCCConfig(entries=4, associativity=4))
        stream = [1, 2, 3, 4, 1, 1, 5, 6, 2, 7]
        for tag in stream:
            full.access(tag)
            wide.access(tag)
        assert {e.tag for e in full.ranked()} == {e.tag for e in wide.ranked()}
        assert full.stats.evictions == wide.stats.evictions
