"""Tests for configuration validation and presets."""

import pytest

from repro.config import (
    OSConfig,
    PCCConfig,
    SystemConfig,
    TLBConfig,
    paper_config,
    scaled_config,
    tiny_config,
)
from repro.vm.address import PageSize


class TestPaperDefaults:
    def test_table2_values(self):
        config = paper_config()
        assert config.tlb.l1_base.entries == 64
        assert config.tlb.l2.entries == 1024
        assert config.pcc.entries == 128
        assert config.pcc.counter_bits == 8
        assert config.pcc.giga_entries == 8
        assert config.os.regions_to_promote == 128
        assert config.memory_bytes == 64 << 30

    def test_pcc_defaults_lfu(self):
        assert paper_config().pcc.replacement == "lfu"


class TestScaled:
    def test_tlb_shrunk_proportionally(self):
        config = scaled_config()
        paper = paper_config()
        ratio = paper.tlb.l2.entries / config.tlb.l2.entries
        assert ratio == 8
        assert paper.tlb.l1_base.entries / config.tlb.l1_base.entries == 4

    def test_overrides(self):
        config = scaled_config(cores=4, pcc_entries=16)
        assert config.cores == 4
        assert config.pcc.entries == 16


class TestValidation:
    def test_negative_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(cores=0)

    def test_negative_memory(self):
        with pytest.raises(ValueError):
            SystemConfig(memory_bytes=0)

    def test_with_override(self):
        config = tiny_config()
        assert config.with_(cores=3).cores == 3
        assert config.cores == 1  # original untouched

    def test_tiny_config_override_kwargs(self):
        assert tiny_config(cores=2).cores == 2


class TestTLBConfig:
    def test_full_associativity_zero(self):
        config = TLBConfig(8, 0, (PageSize.HUGE,))
        assert config.ways == 8
        assert config.sets == 1

    def test_negative_associativity(self):
        with pytest.raises(ValueError):
            TLBConfig(8, -1, (PageSize.BASE,))
