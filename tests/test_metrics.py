"""The metrics bus: registry semantics and the stable export schema."""

import json

import numpy as np
import pytest

from repro.config import tiny_config
from repro.engine.simulation import Simulator
from repro.metrics import (
    SCHEMA,
    Counter,
    MetricsCollector,
    MetricsRegistry,
    collecting,
    publish_run,
)
from repro.os.kernel import HugePagePolicy
from tests.conftest import make_workload

BASE = 0x5555_5540_0000


def _addresses(pages):
    return np.uint64(BASE) + np.array(pages, dtype=np.uint64) * np.uint64(4096)


class TestCounter:
    def test_monotone(self):
        counter = Counter("x")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            Counter("x").add(-1)


class TestRegistry:
    def test_counter_is_idempotent_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_snapshot_merges_counters_and_providers_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z.late").add(2)
        registry.register(lambda: {"a.early": 7})
        snap = registry.snapshot()
        assert snap == {"a.early": 7, "z.late": 2}
        assert list(snap) == ["a.early", "z.late"]

    def test_delta_against_prior_snapshot(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        before = registry.snapshot()
        counter.add(3)
        assert registry.delta(before) == {"hits": 3}

    def test_sample_and_export_shape(self):
        registry = MetricsRegistry()
        registry.counter("n").add(1)
        registry.sample(at=10)
        registry.counter("n").add(1)
        doc = registry.export(meta={"policy": "pcc"})
        assert doc["schema"] == SCHEMA
        assert doc["meta"] == {"policy": "pcc"}
        assert doc["counters"] == {"n": 2}
        assert doc["samples"] == [{"at": 10, "counters": {"n": 1}}]

    def test_write_json_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n").add(1)
        path = registry.write_json(tmp_path / "m.json")
        assert json.loads(path.read_text())["counters"] == {"n": 1}


class TestCollector:
    def test_collecting_captures_published_runs(self):
        with collecting() as collector:
            publish_run({"schema": SCHEMA, "counters": {"x": 1}})
        assert len(collector.runs) == 1
        assert collector.export()["schema"] == SCHEMA

    def test_publish_without_collector_is_noop(self):
        publish_run({"schema": SCHEMA})  # must not raise

    def test_nested_collectors_both_receive(self):
        with collecting() as outer, collecting() as inner:
            publish_run({"run": 1})
        assert outer.runs == inner.runs == [{"run": 1}]

    def test_write_json(self, tmp_path):
        collector = MetricsCollector()
        collector.publish({"run": 1})
        path = collector.write_json(tmp_path / "agg.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
        assert doc["runs"] == [{"run": 1}]


class TestSimulationExportSchema:
    """Stable keys, monotone counters, samples aligned with timelines."""

    def _run(self, pages=None, **kwargs):
        if pages is None:
            pages = list(range(150)) * 4
        simulator = Simulator(
            tiny_config(), policy=HugePagePolicy.PCC,
            **kwargs,
        )
        simulator.thread_quantum = 64  # many rounds -> many ticks
        return simulator.run([make_workload(_addresses(pages))])

    def test_schema_header_and_meta(self):
        metrics = self._run().metrics
        assert metrics["schema"] == SCHEMA
        assert metrics["meta"]["policy"] == "pcc"
        assert metrics["meta"]["cores"] == 1
        assert metrics["meta"]["processes"] == [1]

    def test_key_set_is_stable_across_runs(self):
        first = self._run().metrics
        second = self._run().metrics
        assert set(first["counters"]) == set(second["counters"])
        # spot-check the documented families
        names = set(first["counters"])
        assert "core0.accesses" in names
        assert "core0.tlb.L1-4K.hits" in names
        assert "core0.cycles.translation_cycles" in names
        assert "core0.fastpath.fast_hits" in names
        assert "kernel.faults.total" in names
        assert "kernel.promotion.promotions" in names

    def test_counters_are_monotone_across_samples(self):
        metrics = self._run().metrics
        assert len(metrics["samples"]) >= 2
        previous = {}
        for sample in metrics["samples"] + [
            {"at": None, "counters": metrics["counters"]}
        ]:
            for name, value in sample["counters"].items():
                assert value >= previous.get(name, 0), name
            previous = sample["counters"]

    def test_samples_align_with_promotion_timeline(self):
        result = self._run()
        sample_ats = [s["at"] for s in result.metrics["samples"]]
        assert sample_ats == [at for at, _ in result.promotion_timeline]

    def test_every_sample_has_the_full_key_set(self):
        metrics = self._run().metrics
        names = set(metrics["counters"])
        for sample in metrics["samples"]:
            assert set(sample["counters"]) == names


class TestResilienceExport:
    """The resilience layer's counters ride the same v1 schema."""

    def test_export_carries_schema_and_component(self):
        from repro.resilience import bus

        export = bus.publish()
        assert export["schema"] == SCHEMA
        assert export["meta"]["component"] == "resilience"

    def test_every_documented_counter_is_pre_registered(self):
        from repro.resilience import bus

        export = bus.registry().export()
        assert set(export["counters"]) >= set(bus.COUNTER_NAMES)
        snapshot = bus.snapshot()
        assert set(snapshot) >= set(bus.COUNTER_NAMES)

    def test_publish_reaches_active_collectors(self):
        from repro.resilience import bus

        with collecting() as collector:
            bus.publish(meta={"report": {"retries": 2}})
        (run,) = collector.runs
        assert run["meta"]["report"] == {"retries": 2}
        assert set(run["counters"]) >= set(bus.COUNTER_NAMES)

    def test_counter_helper_prefixes_resilience(self):
        from repro.resilience import bus

        counter = bus.counter("tasks.retried")
        assert counter.name == "resilience.tasks.retried"
