"""Additional walker coverage: PWC structure behaviour and stats."""

import pytest

from repro.config import WalkerConfig
from repro.tlb.walker import PageTableWalker
from repro.vm.pagetable import PageTable

BASE = 0x5555_5540_0000


@pytest.fixture
def table():
    table = PageTable()
    # map pages across several 2MB regions and two 1GB regions
    for region in range(4):
        table.map_base(BASE + region * (2 << 20), frame=region)
    table.map_base(BASE + (1 << 30), frame=99)
    return table


class TestPWCStructure:
    def test_pwc_hits_accumulate_within_locality(self, table):
        walker = PageTableWalker(WalkerConfig(pwc_entries=32))
        for _ in range(4):
            for region in range(4):
                walker.walk(BASE + region * (2 << 20), table)
        # PML4 and PUD tags are shared across all these walks
        assert walker.stats.pwc_hits > walker.stats.pwc_misses

    def test_last_tag_fast_path_counts_as_hit(self, table):
        walker = PageTableWalker(WalkerConfig())
        walker.walk(BASE, table)
        hits_before = walker.stats.pwc_hits
        walker.walk(BASE, table)
        assert walker.stats.pwc_hits > hits_before

    def test_walk_cycles_accumulate(self, table):
        walker = PageTableWalker(WalkerConfig())
        total = 0
        for region in range(4):
            total += walker.walk(BASE + region * (2 << 20), table).cycles
        assert walker.stats.walk_cycles == total

    def test_distant_addresses_miss_pmd_pwc(self, table):
        """A PMD-level PWC entry covers 2MB: walks to different regions
        cannot share it."""
        walker = PageTableWalker(WalkerConfig())
        first = walker.walk(BASE, table)
        second = walker.walk(BASE + (2 << 20), table)
        # both pay the leaf reference; the second reuses upper levels
        assert second.cycles <= first.cycles
        assert second.cycles >= walker.config.memory_ref_cycles

    def test_cross_gigabyte_walk_misses_pud_pwc(self, table):
        walker = PageTableWalker(WalkerConfig())
        walker.walk(BASE, table)
        misses_before = walker.stats.pwc_misses
        walker.walk(BASE + (1 << 30), table)
        assert walker.stats.pwc_misses > misses_before


class TestStatsConsistency:
    def test_memory_refs_bounded_by_levels(self, table):
        walker = PageTableWalker(WalkerConfig())
        for region in range(4):
            walker.walk(BASE + region * (2 << 20), table)
        assert walker.stats.walks == 4
        assert 1.0 <= walker.stats.refs_per_walk <= 4.0

    def test_no_pwc_means_four_refs_per_base_walk(self, table):
        walker = PageTableWalker(WalkerConfig(pwc_enabled=False))
        for _ in range(3):
            walker.walk(BASE, table)
        assert walker.stats.refs_per_walk == 4.0
