"""Unit tests for the two-level TLB hierarchy."""

import pytest

from repro.config import TLBConfig, TLBHierarchyConfig
from repro.tlb.hierarchy import HitLevel, TLBHierarchy
from repro.vm.address import PageSize


@pytest.fixture
def hierarchy():
    config = TLBHierarchyConfig(
        l1_base=TLBConfig(4, 2, (PageSize.BASE,)),
        l1_huge=TLBConfig(2, 2, (PageSize.HUGE,)),
        l1_giga=TLBConfig(2, 2, (PageSize.GIGA,)),
        l2=TLBConfig(8, 2, (PageSize.BASE, PageSize.HUGE)),
    )
    return TLBHierarchy(config)


class TestMissPath:
    def test_cold_lookup_misses_everywhere(self, hierarchy):
        result = hierarchy.lookup(100)
        assert result.level is HitLevel.MISS
        assert result.walk_required
        assert hierarchy.l1_base.stats.misses == 1
        assert hierarchy.l2.stats.misses == 1

    def test_fill_base_then_l1_hit(self, hierarchy):
        hierarchy.fill(100, PageSize.BASE)
        result = hierarchy.lookup(100)
        assert result.level is HitLevel.L1
        assert result.page_size is PageSize.BASE

    def test_l2_hit_refills_l1(self, hierarchy):
        hierarchy.fill(100, PageSize.BASE)
        # evict vpn 100 from tiny L1 by filling conflicting tags (set 0)
        for tag in (102, 104, 106):
            hierarchy.l1_base.fill(tag, PageSize.BASE)
        result = hierarchy.lookup(100)
        assert result.level is HitLevel.L2
        # refilled: next lookup hits L1
        assert hierarchy.lookup(100).level is HitLevel.L1


class TestHugePages:
    def test_huge_fill_covers_all_constituent_vpns(self, hierarchy):
        hierarchy.fill(512, PageSize.HUGE)  # region 1 = vpns 512..1023
        for vpn in (512, 700, 1023):
            assert hierarchy.lookup(vpn).page_size is PageSize.HUGE

    def test_huge_entry_does_not_cover_neighbor_region(self, hierarchy):
        hierarchy.fill(512, PageSize.HUGE)
        assert hierarchy.lookup(1024).level is HitLevel.MISS

    def test_huge_entry_in_l2(self, hierarchy):
        hierarchy.fill(512, PageSize.HUGE)
        hierarchy.l1_huge.flush()
        result = hierarchy.lookup(700)
        assert result.level is HitLevel.L2
        assert result.page_size is PageSize.HUGE

    def test_giga_fill_only_in_l1(self, hierarchy):
        giga_vpn = 5 << 18
        hierarchy.fill(giga_vpn, PageSize.GIGA)
        assert hierarchy.lookup(giga_vpn).page_size is PageSize.GIGA
        hierarchy.l1_giga.flush()
        # L2 does not serve 1GB entries (Table 2)
        assert hierarchy.lookup(giga_vpn).level is HitLevel.MISS


class TestShootdown:
    def test_shootdown_drops_base_entries_in_region(self, hierarchy):
        hierarchy.fill(512, PageSize.BASE)
        hierarchy.fill(513, PageSize.BASE)
        hierarchy.shootdown_region(1)
        assert hierarchy.lookup(512).level is HitLevel.MISS

    def test_shootdown_drops_huge_entry(self, hierarchy):
        hierarchy.fill(512, PageSize.HUGE)
        hierarchy.shootdown_region(1)
        assert hierarchy.lookup(512).level is HitLevel.MISS

    def test_shootdown_leaves_other_regions(self, hierarchy):
        hierarchy.fill(512, PageSize.BASE)
        hierarchy.fill(1024, PageSize.BASE)
        hierarchy.shootdown_region(1)
        assert hierarchy.lookup(1024).level is HitLevel.L1

    def test_flush_clears_everything(self, hierarchy):
        hierarchy.fill(1, PageSize.BASE)
        hierarchy.fill(512, PageSize.HUGE)
        hierarchy.flush()
        assert hierarchy.lookup(1).level is HitLevel.MISS
        assert hierarchy.lookup(513).level is HitLevel.MISS


class TestMissRate:
    def test_miss_rate_counts_full_misses_only(self, hierarchy):
        hierarchy.fill(100, PageSize.BASE)
        hierarchy.lookup(100)  # L1 hit
        hierarchy.lookup(200)  # full miss
        assert hierarchy.miss_rate() == 0.5

    def test_miss_rate_empty(self, hierarchy):
        assert hierarchy.miss_rate() == 0.0


class TestTableTwoDefaults:
    def test_paper_geometry(self):
        config = TLBHierarchyConfig()
        assert config.l1_base.entries == 64
        assert config.l1_huge.entries == 32
        assert config.l1_giga.entries == 4
        assert config.l2.entries == 1024
        assert config.l2.ways == 8
        assert config.coverage_bytes() == (64 + 1024) * 4096
