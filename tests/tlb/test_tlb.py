"""Unit tests for the single TLB structure."""

import pytest

from repro.config import TLBConfig
from repro.tlb.tlb import TLB
from repro.vm.address import PageSize


def make_tlb(entries=4, ways=2):
    return TLB(TLBConfig(entries, ways, (PageSize.BASE,)))


class TestConfigValidation:
    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TLBConfig(0, 1, (PageSize.BASE,))

    def test_rejects_indivisible_ways(self):
        with pytest.raises(ValueError):
            TLBConfig(6, 4, (PageSize.BASE,))

    def test_rejects_empty_page_sizes(self):
        with pytest.raises(ValueError):
            TLBConfig(4, 2, ())

    def test_full_associativity(self):
        config = TLBConfig(8, 0, (PageSize.BASE,))
        assert config.ways == 8
        assert config.sets == 1


class TestLookupFill:
    def test_miss_then_hit(self):
        tlb = make_tlb()
        assert not tlb.lookup(5)
        tlb.fill(5, PageSize.BASE)
        assert tlb.lookup(5)
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1

    def test_probe_does_not_change_stats(self):
        tlb = make_tlb()
        tlb.fill(5, PageSize.BASE)
        assert tlb.probe(5)
        assert not tlb.probe(6)
        assert tlb.stats.hits == 0
        assert tlb.stats.misses == 0

    def test_refill_existing_entry_no_eviction(self):
        tlb = make_tlb()
        tlb.fill(5, PageSize.BASE)
        assert tlb.fill(5, PageSize.BASE) is None
        assert tlb.occupancy() == 1


class TestLRU:
    def test_lru_eviction_within_set(self):
        tlb = make_tlb(entries=4, ways=2)  # 2 sets
        # tags 0, 2, 4 map to set 0
        tlb.fill(0, PageSize.BASE)
        tlb.fill(2, PageSize.BASE)
        victim = tlb.fill(4, PageSize.BASE)
        assert victim == 0  # oldest
        assert not tlb.probe(0)
        assert tlb.probe(2)

    def test_hit_refreshes_lru(self):
        tlb = make_tlb(entries=4, ways=2)
        tlb.fill(0, PageSize.BASE)
        tlb.fill(2, PageSize.BASE)
        tlb.lookup(0)  # 0 becomes MRU
        victim = tlb.fill(4, PageSize.BASE)
        assert victim == 2

    def test_hit_fast_refreshes_lru(self):
        tlb = make_tlb(entries=4, ways=2)
        tlb.fill(0, PageSize.BASE)
        tlb.fill(2, PageSize.BASE)
        assert tlb.hit_fast(0)
        victim = tlb.fill(4, PageSize.BASE)
        assert victim == 2

    def test_conflicts_only_within_set(self):
        tlb = make_tlb(entries=4, ways=2)
        # set 0 gets 3 tags, set 1 untouched
        tlb.fill(1, PageSize.BASE)  # set 1
        tlb.fill(0, PageSize.BASE)
        tlb.fill(2, PageSize.BASE)
        tlb.fill(4, PageSize.BASE)  # evicts from set 0 only
        assert tlb.probe(1)

    def test_eviction_counter(self):
        tlb = make_tlb(entries=2, ways=1)
        tlb.fill(0, PageSize.BASE)
        tlb.fill(2, PageSize.BASE)
        assert tlb.stats.evictions == 1


class TestInvalidation:
    def test_invalidate_present(self):
        tlb = make_tlb()
        tlb.fill(5, PageSize.BASE)
        assert tlb.invalidate(5)
        assert not tlb.probe(5)
        assert tlb.stats.invalidations == 1

    def test_invalidate_absent(self):
        tlb = make_tlb()
        assert not tlb.invalidate(5)
        assert tlb.stats.invalidations == 0

    def test_flush(self):
        tlb = make_tlb()
        for tag in range(4):
            tlb.fill(tag, PageSize.BASE)
        tlb.flush()
        assert tlb.occupancy() == 0
        assert tlb.stats.invalidations == 4


class TestStats:
    def test_miss_rate(self):
        tlb = make_tlb()
        tlb.lookup(1)
        tlb.fill(1, PageSize.BASE)
        tlb.lookup(1)
        assert tlb.stats.miss_rate == 0.5

    def test_miss_rate_no_accesses(self):
        assert make_tlb().stats.miss_rate == 0.0

    def test_resident_tags(self):
        tlb = make_tlb()
        tlb.fill(3, PageSize.BASE)
        tlb.fill(8, PageSize.BASE)
        assert tlb.resident_tags() == {3, 8}


class TestNonPowerOfTwoSets:
    def test_three_sets_work(self):
        tlb = TLB(TLBConfig(6, 2, (PageSize.BASE,)))  # 3 sets
        for tag in range(12):
            tlb.fill(tag, PageSize.BASE)
        assert tlb.occupancy() == 6
        assert tlb.probe(11)
