"""Unit tests for the page-table walker and PCC admission protocol."""

import pytest

from repro.config import WalkerConfig
from repro.tlb.walker import PageTableWalker
from repro.vm.address import GIGA_PAGE_SIZE, HUGE_PAGE_SIZE, PageSize
from repro.vm.pagetable import PageTable

BASE = 0x5555_5540_0000


@pytest.fixture
def table():
    table = PageTable()
    table.map_base(BASE, frame=1)
    table.map_base(BASE + 4096, frame=2)
    return table


@pytest.fixture
def walker():
    return PageTableWalker(WalkerConfig())


class TestAdmissionProtocol:
    def test_first_walk_not_admitted(self, walker, table):
        result = walker.walk(BASE, table)
        assert result.pcc_2mb_candidate is None
        assert result.pcc_1gb_candidate is None

    def test_second_walk_admitted_with_region_prefix(self, walker, table):
        walker.walk(BASE, table)
        result = walker.walk(BASE + 4096, table)
        assert result.pcc_2mb_candidate == BASE >> 21
        assert result.pcc_1gb_candidate == BASE >> 30

    def test_candidate_counters(self, walker, table):
        walker.walk(BASE, table)
        walker.walk(BASE, table)
        assert walker.stats.pcc_candidates_2mb == 1
        assert walker.stats.pcc_candidates_1gb == 1

    def test_huge_leaf_reports_promoted(self, walker):
        table = PageTable()
        table.map_huge(BASE, frame=1)
        walker.walk(BASE, table)
        result = walker.walk(BASE + 4096, table)
        assert result.leaf_is_promoted
        assert result.pcc_2mb_candidate == BASE >> 21

    def test_giga_leaf_skips_2mb_pcc(self, walker):
        table = PageTable()
        table.map_base(GIGA_PAGE_SIZE, frame=1)
        table.promote_giga(1, frame=2)
        walker.walk(GIGA_PAGE_SIZE, table)
        result = walker.walk(GIGA_PAGE_SIZE + HUGE_PAGE_SIZE, table)
        assert result.pcc_2mb_candidate is None
        assert result.pcc_1gb_candidate == 1


class TestWalkLatency:
    def test_base_walk_deeper_than_huge(self):
        config = WalkerConfig(pwc_enabled=False)
        walker = PageTableWalker(config)
        table = PageTable()
        table.map_base(BASE, frame=1)
        table.map_huge(BASE + HUGE_PAGE_SIZE, frame=2)
        base_walk = walker.walk(BASE, table)
        huge_walk = walker.walk(BASE + HUGE_PAGE_SIZE, table)
        assert base_walk.cycles == 4 * config.memory_ref_cycles
        assert huge_walk.cycles == 3 * config.memory_ref_cycles

    def test_giga_walk_two_levels(self):
        config = WalkerConfig(pwc_enabled=False)
        walker = PageTableWalker(config)
        table = PageTable()
        table.map_base(GIGA_PAGE_SIZE, frame=1)
        table.promote_giga(1, frame=2)
        walk = walker.walk(GIGA_PAGE_SIZE, table)
        assert walk.cycles == 2 * config.memory_ref_cycles

    def test_pwc_reduces_repeat_walk_cost(self, walker, table):
        first = walker.walk(BASE, table)
        second = walker.walk(BASE, table)
        assert second.cycles < first.cycles
        assert walker.stats.pwc_hits > 0

    def test_pwc_leaf_always_references_memory(self, walker, table):
        walker.walk(BASE, table)
        walker.walk(BASE, table)
        # refs/walk can never drop below 1.0 (§5.4.1)
        assert walker.stats.refs_per_walk >= 1.0

    def test_flush_pwc_restores_full_cost(self, walker, table):
        first = walker.walk(BASE, table)
        walker.walk(BASE, table)
        walker.flush_pwc()
        third = walker.walk(BASE, table)
        assert third.cycles == first.cycles

    def test_disabled_pwc_constant_cost(self, table):
        walker = PageTableWalker(WalkerConfig(pwc_enabled=False))
        first = walker.walk(BASE, table)
        second = walker.walk(BASE, table)
        assert first.cycles == second.cycles
        assert walker.stats.pwc_hits == 0


class TestStats:
    def test_walk_counts(self, walker, table):
        walker.walk(BASE, table)
        walker.walk(BASE + 4096, table)
        assert walker.stats.walks == 2
        assert walker.stats.walk_cycles > 0

    def test_refs_per_walk_empty(self, walker):
        assert walker.stats.refs_per_walk == 0.0
