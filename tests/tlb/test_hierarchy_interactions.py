"""Interaction tests: inclusion behaviour between L1 and L2."""

import pytest

from repro.config import TLBConfig, TLBHierarchyConfig
from repro.tlb.hierarchy import HitLevel, TLBHierarchy
from repro.vm.address import PageSize


@pytest.fixture
def hierarchy():
    return TLBHierarchy(
        TLBHierarchyConfig(
            l1_base=TLBConfig(2, 2, (PageSize.BASE,)),
            l1_huge=TLBConfig(2, 2, (PageSize.HUGE,)),
            l1_giga=TLBConfig(2, 2, (PageSize.GIGA,)),
            l2=TLBConfig(16, 4, (PageSize.BASE, PageSize.HUGE)),
        )
    )


class TestNonInclusiveBehaviour:
    def test_l1_eviction_leaves_l2_copy(self, hierarchy):
        """The hierarchy is non-inclusive-non-exclusive: an entry
        pushed out of the tiny L1 is still served by L2."""
        for vpn in range(6):
            hierarchy.fill(vpn, PageSize.BASE)
        # early vpns fell out of the 2-entry L1 but live in the 16-entry L2
        result = hierarchy.lookup(0)
        assert result.level is HitLevel.L2

    def test_l2_hit_promotes_back_to_l1(self, hierarchy):
        for vpn in range(6):
            hierarchy.fill(vpn, PageSize.BASE)
        hierarchy.lookup(0)  # L2 hit, refilled into L1
        assert hierarchy.lookup(0).level is HitLevel.L1

    def test_l2_eviction_with_l1_survivor(self, hierarchy):
        """An entry can outlive its L2 copy in L1 (NINE hierarchy)."""
        hierarchy.fill(0, PageSize.BASE)
        # flood set 0 of the 4-set L2 with conflicting tags (mod 4)
        for vpn in (4, 8, 12, 16):
            hierarchy.l2.fill(vpn, PageSize.BASE)
        assert not hierarchy.l2.probe(0)
        # L1 still answers
        assert hierarchy.lookup(0).level is HitLevel.L1


class TestMixedSizeInteractions:
    def test_base_and_huge_entries_for_different_regions_coexist(self, hierarchy):
        hierarchy.fill(0, PageSize.BASE)  # region 0, page 0
        hierarchy.fill(512, PageSize.HUGE)  # region 1 as huge
        assert hierarchy.lookup(0).page_size is PageSize.BASE
        assert hierarchy.lookup(700).page_size is PageSize.HUGE

    def test_huge_entry_answers_before_walk_for_any_constituent(self, hierarchy):
        hierarchy.fill(512, PageSize.HUGE)
        for vpn in (512, 600, 1023):
            assert hierarchy.lookup(vpn).level is not HitLevel.MISS

    def test_stale_base_entry_removed_by_promotion_shootdown(self, hierarchy):
        """After promotion, the OS shootdown prevents a stale 4KB entry
        from shadowing the new 2MB mapping."""
        hierarchy.fill(512, PageSize.BASE)
        hierarchy.shootdown_region(1)
        hierarchy.fill(512, PageSize.HUGE)
        result = hierarchy.lookup(512)
        assert result.page_size is PageSize.HUGE
