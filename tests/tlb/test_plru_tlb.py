"""Deterministic unit tests for the tree-PLRU replacement knob.

The property suite (``tests/props/test_plru.py``) and the reference
oracle cover PLRU breadth; these are the hand-auditable scripted cases
— the examples a reviewer can trace on paper — plus the config-layer
contract: knob validation, hierarchy policy consistency, and the
guarantee that page-walk caches stay LRU whatever the D-TLB runs.
"""

import pytest

from repro.config import (
    TLBConfig,
    scaled_config,
    tiny_config,
)
from repro.tlb.hierarchy import TLBHierarchy
from repro.tlb.tlb import TLB
from repro.tlb.walker import PageTableWalker
from repro.vm.address import PageSize


def _plru_tlb(entries=4, ways=4):
    return TLB(
        TLBConfig(entries, ways, (PageSize.BASE,), replacement="plru"),
        "unit",
    )


class TestPLRUTLB:
    def test_fill_prefers_lowest_empty_way(self):
        tlb = _plru_tlb()
        for tag in (10, 11, 12):
            assert tlb.fill(tag, PageSize.BASE) is None
        _, way_tags = tlb.plru_state(0)
        assert way_tags == [10, 11, 12, -1]

    def test_full_set_evicts_the_tree_victim_not_the_mru(self):
        tlb = _plru_tlb()
        for tag in (10, 11, 12, 13):
            tlb.fill(tag, PageSize.BASE)
        assert tlb.lookup(13)
        victim = tlb.fill(14, PageSize.BASE)
        assert victim is not None and victim != 13
        assert tlb.stats.evictions == 1

    def test_hit_refreshes_but_probe_does_not(self):
        tlb = _plru_tlb(2, 2)
        tlb.fill(0, PageSize.BASE)
        tlb.fill(2, PageSize.BASE)  # same set (1 set at 2 entries/2 ways)
        assert tlb.lookup(0)  # way 0 becomes MRU
        assert tlb.probe(2)  # a probe must not promote way 1
        assert tlb.fill(4, PageSize.BASE) == 2

    def test_invalidate_frees_the_way_but_keeps_direction_bits(self):
        tlb = _plru_tlb()
        for tag in (10, 11, 12, 13):
            tlb.fill(tag, PageSize.BASE)
        bits_before, _ = tlb.plru_state(0)
        assert tlb.invalidate(11)
        bits_after, way_tags = tlb.plru_state(0)
        assert bits_after == bits_before  # hardware does not rewind
        assert way_tags[1] == -1
        # the freed way is refilled before anyone is evicted
        assert tlb.fill(15, PageSize.BASE) is None
        assert tlb.plru_state(0)[1][1] == 15

    def test_flush_resets_entries_and_tree(self):
        tlb = _plru_tlb()
        for tag in (10, 11, 12, 13):
            tlb.fill(tag, PageSize.BASE)
        tlb.flush()
        bits, way_tags = tlb.plru_state(0)
        assert bits == 0
        assert way_tags == [-1] * 4
        assert tlb.occupancy() == 0
        assert tlb.stats.invalidations == 4

    def test_two_way_plru_equals_lru(self):
        """A 2-way tree is one direction bit — exactly LRU. This is why
        the all-2-way tiny config alone cannot validate the knob."""
        lru = TLB(TLBConfig(2, 2, (PageSize.BASE,)), "lru")
        plru = _plru_tlb(2, 2)
        import random

        rng = random.Random(42)
        for _ in range(400):
            tag = rng.randrange(6)
            if rng.random() < 0.5:
                assert lru.lookup(tag) == plru.lookup(tag)
            else:
                assert lru.fill(tag, PageSize.BASE) == plru.fill(
                    tag, PageSize.BASE
                )
        assert lru.resident_tags() == plru.resident_tags()


class TestConfigKnob:
    def test_bad_replacement_name_is_rejected(self):
        with pytest.raises(ValueError, match="replacement"):
            TLBConfig(4, 2, (PageSize.BASE,), replacement="fifo")

    def test_mixed_policy_hierarchy_is_rejected(self):
        config = tiny_config().tlb
        mixed = config.__class__(
            l1_base=TLBConfig(4, 2, (PageSize.BASE,), replacement="plru"),
            l1_huge=config.l1_huge,
            l1_giga=config.l1_giga,
            l2=config.l2,
        )
        with pytest.raises(ValueError, match="mixed"):
            TLBHierarchy(mixed)

    def test_with_tlb_replacement_rewrites_all_four_structures(self):
        config = scaled_config().with_tlb_replacement("plru")
        tlb = config.tlb
        assert {
            tlb.l1_base.replacement,
            tlb.l1_huge.replacement,
            tlb.l1_giga.replacement,
            tlb.l2.replacement,
        } == {"plru"}
        # geometry is untouched
        assert tlb.l1_base.entries == scaled_config().tlb.l1_base.entries

    def test_pwcs_stay_lru_under_the_plru_knob(self):
        """Real page-walk caches are LRU regardless of the D-TLB
        policy; the walker must not inherit the hierarchy's knob."""
        config = tiny_config().with_tlb_replacement("plru")
        walker = PageTableWalker(config.walker)
        for pwc in walker._pwcs:
            assert pwc.config.replacement == "lru"


class TestHierarchyUnderPLRU:
    def test_lookup_rebinding_keeps_attribution(self):
        config = tiny_config().with_tlb_replacement("plru").tlb
        hierarchy = TLBHierarchy(config)
        assert hierarchy.lookup.__func__ is TLBHierarchy._lookup_plru
        vpn = 0x1234
        result = hierarchy.lookup(vpn)
        assert result.walk_required
        # the clean miss is attributed once, to the 4KB structure
        assert hierarchy.l1_base.stats.misses == 1
        assert hierarchy.l2.stats.misses == 1
        hierarchy.fill(vpn, PageSize.BASE)
        assert not hierarchy.lookup(vpn).walk_required
        assert hierarchy.l1_base.stats.hits == 1
