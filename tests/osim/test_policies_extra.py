"""Property-style coverage for the candidate-merge policies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dump import CandidateRecord
from repro.os.policies import (
    apply_process_bias,
    deduplicate,
    highest_frequency_order,
    round_robin_order,
)

records_strategy = st.lists(
    st.builds(
        CandidateRecord,
        pid=st.integers(1, 3),
        core=st.integers(0, 3),
        tag=st.integers(0, 30),
        frequency=st.integers(0, 255),
    ),
    max_size=60,
)


@given(records=records_strategy)
@settings(max_examples=150, deadline=None)
def test_orders_are_permutations(records):
    for order in (highest_frequency_order, round_robin_order):
        merged = order(records)
        assert sorted(map(id, merged)) == sorted(map(id, records))


@given(records=records_strategy)
@settings(max_examples=150, deadline=None)
def test_highest_frequency_is_monotone(records):
    merged = highest_frequency_order(records)
    frequencies = [r.frequency for r in merged]
    assert frequencies == sorted(frequencies, reverse=True)


@given(records=records_strategy)
@settings(max_examples=150, deadline=None)
def test_round_robin_never_starves_a_core(records):
    merged = round_robin_order(records)
    cores = {r.core for r in records}
    if not cores:
        return
    # every core with candidates appears within the first len(cores)
    # positions at least once per "round" it still has entries for
    first_round = {r.core for r in merged[: len(cores)]}
    assert first_round == cores


@given(records=records_strategy, biased=st.sets(st.integers(1, 3)))
@settings(max_examples=150, deadline=None)
def test_bias_partitions_stably(records, biased):
    ordered = apply_process_bias(records, sorted(biased))
    seen_unbiased = False
    for record in ordered:
        if record.pid not in biased:
            seen_unbiased = True
        else:
            assert not seen_unbiased  # no biased record after unbiased
    # relative order within each partition is preserved
    favored = [r for r in records if r.pid in biased]
    assert [r for r in ordered if r.pid in biased] == favored


@given(records=records_strategy)
@settings(max_examples=150, deadline=None)
def test_deduplicate_idempotent_and_minimal(records):
    once = deduplicate(records)
    twice = deduplicate(once)
    assert once == twice
    keys = [(r.pid, r.tag, int(r.page_size)) for r in once]
    assert len(keys) == len(set(keys))
