"""Tests for kernel-parameter plumbing and the dump-mode alternative."""

import copy

import pytest

from repro.config import scaled_config, tiny_config
from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy, KernelParams, SimulatedKernel
from tests.conftest import make_workload
from tests.engine.test_simulation import hot_cold_addresses


class TestParamPlumbing:
    def test_min_frequency_reaches_engine(self):
        kernel = SimulatedKernel(
            tiny_config(),
            policy=HugePagePolicy.PCC,
            params=KernelParams(min_candidate_frequency=5),
        )
        assert kernel._engine.min_frequency == 5

    def test_pressure_throttle_reaches_engine(self):
        kernel = SimulatedKernel(
            tiny_config(),
            policy=HugePagePolicy.PCC,
            params=KernelParams(pressure_throttle=False),
        )
        assert not kernel._engine.pressure_throttle

    def test_defaults_from_config(self):
        kernel = SimulatedKernel(tiny_config(), policy=HugePagePolicy.PCC)
        assert kernel._engine.min_frequency == 1
        assert kernel._engine.pressure_throttle

    def test_throttle_off_allows_full_quota_under_pressure(self):
        from repro.os.physmem import PhysicalMemory
        from repro.os.promotion import PromotionEngine
        from tests.osim.test_promotion import rec, table_with_regions, REGION
        from repro.vm.address import HUGE_PAGE_SIZE

        engine = PromotionEngine(
            PhysicalMemory(8 * HUGE_PAGE_SIZE),
            regions_to_promote=8,
            pressure_throttle=False,
        )
        table = table_with_regions(8)
        outcome = engine.run_interval(
            [rec(REGION + i) for i in range(8)], {1: table}
        )
        assert len(outcome.promoted) == 8  # no throttle: spend it all


class TestDumpModes:
    def _run(self, mode):
        config = tiny_config()
        params = KernelParams(regions_to_promote=4, pcc_dump_mode=mode)
        simulator = Simulator(config, policy=HugePagePolicy.PCC, params=params)
        result = simulator.run(
            [make_workload(hot_cold_addresses(repeats=2500))]
        )
        return simulator, result

    def test_both_modes_promote_the_hot_region(self):
        for mode in ("flush", "snapshot"):
            simulator, result = self._run(mode)
            table = simulator.kernel.processes[1].page_table
            hot_region = 0x5555_5540_0000 >> 21
            assert table.is_promoted(hot_region), mode
            assert result.promotions > 0, mode

    def test_snapshot_leaves_counters_accumulating(self):
        simulator, _ = self._run("snapshot")
        # promoted entries are shot down, but unpromoted candidates keep
        # their history across intervals (flush mode would clear them)
        # — verify via PCC stats: snapshot mode never clears, so total
        # invalidations are the only removals
        core_stats = None
        # the simulator's cores are not retained; re-run capturing stats
        import repro.engine.simulation as simmod

        captured = {}
        orig = simmod.Simulator._promotion_tick

        def patched(self, cores, ledgers):
            captured["pcc"] = cores[0].pcc
            return orig(self, cores, ledgers)

        simmod.Simulator._promotion_tick = patched
        try:
            simulator, _ = self._run("snapshot")
        finally:
            simmod.Simulator._promotion_tick = orig
        # snapshot mode: entries survive the tick (only shootdowns evict)
        assert len(captured["pcc"]) > 0


class TestSnapshotWithGiga:
    def test_snapshot_mode_with_giga_pcc(self):
        """Snapshot reads work for both PCC granularities."""
        from repro.config import PCCConfig

        config = tiny_config().with_(
            pcc=PCCConfig(entries=4, giga_entries=2, giga_enabled=True)
        )
        params = KernelParams(regions_to_promote=4, pcc_dump_mode="snapshot")
        simulator = Simulator(config, policy=HugePagePolicy.PCC, params=params)
        result = simulator.run(
            [make_workload(hot_cold_addresses(repeats=2000))]
        )
        assert result.accesses == 4000
        assert result.promotions >= 0  # completes with consistent state
