"""Unit tests for the PCC promotion engine."""

import pytest

from repro.core.dump import CandidateRecord
from repro.os.physmem import PhysicalMemory
from repro.os.promotion import PromotionEngine
from repro.vm.address import HUGE_PAGE_SIZE, PageSize
from repro.vm.pagetable import PageTable

BASE = 0x5555_5540_0000
REGION = BASE >> 21


def rec(tag, freq=5, pid=1, core=0, promoted_leaf=False,
        page_size=PageSize.HUGE):
    return CandidateRecord(
        pid=pid, core=core, tag=tag, frequency=freq,
        promoted_leaf=promoted_leaf, page_size=page_size,
    )


def make_engine(frames=16, **kwargs):
    return PromotionEngine(PhysicalMemory(frames * HUGE_PAGE_SIZE), **kwargs)


def table_with_regions(count, pid=1):
    table = PageTable(pid=pid)
    for region in range(count):
        table.map_base(BASE + region * HUGE_PAGE_SIZE, frame=region)
    return table


class TestBasicPromotion:
    def test_promotes_candidates(self):
        engine = make_engine()
        table = table_with_regions(2)
        outcome = engine.run_interval(
            [rec(REGION), rec(REGION + 1)], {1: table}
        )
        assert len(outcome.promoted) == 2
        assert table.is_promoted(REGION)
        assert engine.stats.promotions == 2

    def test_quota_limits_interval(self):
        engine = make_engine(regions_to_promote=1)
        table = table_with_regions(3)
        outcome = engine.run_interval(
            [rec(REGION + i) for i in range(3)], {1: table}
        )
        assert len(outcome.promoted) == 1

    def test_lifetime_budget_enforced(self):
        engine = make_engine()
        table = table_with_regions(3)
        engine.run_interval([rec(REGION)], {1: table}, budget_regions=2)
        outcome = engine.run_interval(
            [rec(REGION + 1), rec(REGION + 2)], {1: table}, budget_regions=2
        )
        assert engine.stats.promotions == 2
        assert len(outcome.promoted) == 1

    def test_highest_frequency_order(self):
        engine = make_engine(regions_to_promote=1)
        table = table_with_regions(2)
        outcome = engine.run_interval(
            [rec(REGION, freq=1), rec(REGION + 1, freq=9)], {1: table}
        )
        assert outcome.promoted[0].tag == REGION + 1

    def test_min_frequency_gate(self):
        engine = make_engine(min_frequency=1)
        table = table_with_regions(2)
        outcome = engine.run_interval(
            [rec(REGION, freq=0), rec(REGION + 1, freq=3)], {1: table}
        )
        assert [r.tag for r in outcome.promoted] == [REGION + 1]

    def test_shootdown_callback_invoked(self):
        engine = make_engine()
        table = table_with_regions(1)
        calls = []
        engine.run_interval(
            [rec(REGION)], {1: table},
            on_shootdown=lambda pid, prefix: calls.append((pid, prefix)),
        )
        assert calls == [(1, REGION)]

    def test_skips_unknown_pid(self):
        engine = make_engine()
        outcome = engine.run_interval([rec(REGION, pid=99)], {})
        assert outcome.promoted == []

    def test_skips_already_promoted(self):
        engine = make_engine()
        table = table_with_regions(1)
        engine.run_interval([rec(REGION)], {1: table})
        outcome = engine.run_interval([rec(REGION)], {1: table})
        assert outcome.promoted == []

    def test_skips_promoted_leaf_records(self):
        engine = make_engine()
        table = table_with_regions(1)
        outcome = engine.run_interval(
            [rec(REGION, promoted_leaf=True)], {1: table}
        )
        assert outcome.promoted == []

    def test_skips_stale_unmapped_candidate(self):
        engine = make_engine()
        table = table_with_regions(1)
        outcome = engine.run_interval([rec(REGION + 7)], {1: table})
        assert outcome.promoted == []

    def test_unknown_policy_rejected(self):
        engine = make_engine(promotion_policy=3)
        with pytest.raises(ValueError, match="promotion_policy"):
            engine.run_interval([rec(REGION)], {1: table_with_regions(1)})


class TestMemoryPressure:
    def test_failure_counted_when_no_memory(self):
        engine = make_engine(frames=2, allow_compaction=False)
        engine.physmem.fragment(1.0)
        table = table_with_regions(1)
        outcome = engine.run_interval([rec(REGION)], {1: table})
        assert outcome.promoted == []
        assert engine.stats.promotion_failures == 1

    def test_pressure_throttle_spreads_promotions(self):
        # 8 usable frames, quota 8: the throttle caps each interval at
        # capacity // 4 = 2 so later intervals still find room
        engine = make_engine(frames=8, regions_to_promote=8)
        table = table_with_regions(8)
        records = [rec(REGION + i) for i in range(8)]
        outcome = engine.run_interval(records, {1: table})
        assert len(outcome.promoted) == 2

    def test_no_throttle_with_ample_capacity(self):
        engine = make_engine(frames=64, regions_to_promote=4)
        table = table_with_regions(4)
        outcome = engine.run_interval(
            [rec(REGION + i) for i in range(4)], {1: table}
        )
        assert len(outcome.promoted) == 4


class TestDemotion:
    def _engine_under_pressure(self):
        """After one promotion, only pinned frames remain free-ish: a
        new promotion needs demotion (plus compaction of the split
        pages into the pinned frames' slack)."""
        engine = make_engine(frames=3, demotion_enabled=True,
                             regions_to_promote=1)
        table = table_with_regions(2)
        # occupy remaining capacity with pinned fragmentation
        engine.run_interval([rec(REGION, freq=2)], {1: table})
        engine.physmem.fragment(1.0)
        return engine, table

    def test_demotes_cold_page_for_hot_candidate(self):
        engine, table = self._engine_under_pressure()
        outcome = engine.run_interval([rec(REGION + 1, freq=50)], {1: table})
        assert [pid_prefix for pid_prefix in outcome.demoted] == [(1, REGION)]
        assert not table.is_promoted(REGION)
        assert table.is_promoted(REGION + 1)

    def test_no_demotion_for_equally_cold_candidate(self):
        engine, table = self._engine_under_pressure()
        outcome = engine.run_interval([rec(REGION + 1, freq=2)], {1: table})
        assert outcome.demoted == []
        assert table.is_promoted(REGION)

    def test_still_hot_pages_protected(self):
        engine, table = self._engine_under_pressure()
        records = [
            rec(REGION, freq=40, promoted_leaf=True),  # still walking
            rec(REGION + 1, freq=50),
        ]
        outcome = engine.run_interval(records, {1: table})
        assert outcome.demoted == []

    def test_demotion_disabled_by_default(self):
        engine = make_engine(frames=2, regions_to_promote=1)
        table = table_with_regions(2)
        engine.run_interval([rec(REGION, freq=2)], {1: table})
        engine.physmem.fragment(1.0)
        outcome = engine.run_interval([rec(REGION + 1, freq=50)], {1: table})
        assert outcome.demoted == []
        assert engine.stats.promotion_failures == 1


class TestGigaPromotion:
    def test_promotes_when_frequency_dominates(self):
        engine = make_engine()
        table = PageTable(pid=1)
        giga = 2
        table.map_base(giga << 30, frame=1)
        promoted = engine.maybe_promote_giga(
            records_2mb=[],
            records_1gb=[rec(giga, freq=200, page_size=PageSize.GIGA)],
            page_tables={1: table},
        )
        assert len(promoted) == 1
        assert table.is_giga_promoted(giga)
        assert engine.stats.giga_promotions == 1

    def test_skipped_when_2mb_serves_well(self):
        """§3.2.3's intent with saturating counters: promote to 1GB only
        when the 1GB frequency dominates every constituent 2MB entry —
        a lone hot child saturates alongside the 1GB entry and blocks
        the collective promotion."""
        engine = make_engine()
        table = PageTable(pid=1)
        giga = 2
        table.map_base(giga << 30, frame=1)
        constituent = rec((giga << 9), freq=150)  # hot first 2MB child
        promoted = engine.maybe_promote_giga(
            records_2mb=[constituent],
            records_1gb=[rec(giga, freq=200, page_size=PageSize.GIGA)],
            page_tables={1: table},
        )
        assert promoted == []

    def test_giga_shootdown_callback(self):
        engine = make_engine()
        table = PageTable(pid=1)
        table.map_base(5 << 30, frame=1)
        seen = []
        engine.maybe_promote_giga(
            records_2mb=[],
            records_1gb=[rec(5, freq=200, page_size=PageSize.GIGA)],
            page_tables={1: table},
            on_giga_shootdown=lambda pid, giga: seen.append((pid, giga)),
        )
        assert seen == [(1, 5)]
