"""Tests for memory-bloat accounting across policies."""

import pytest

from repro.core.dump import CandidateRecord
from repro.os.physmem import PhysicalMemory
from repro.os.promotion import PromotionEngine
from repro.os.thp import GreedyTHP
from repro.vm.address import HUGE_PAGE_SIZE, PAGES_PER_HUGE
from repro.vm.pagetable import PageTable

BASE = 0x5555_5540_0000
REGION = BASE >> 21


class TestGreedyBloat:
    def test_each_huge_fault_commits_511_speculative_pages(self):
        thp = GreedyTHP(PhysicalMemory(8 * HUGE_PAGE_SIZE))
        table = PageTable()
        thp.handle_fault(table, BASE)
        thp.handle_fault(table, BASE + HUGE_PAGE_SIZE)
        assert thp.stats.bloat_pages == 2 * (PAGES_PER_HUGE - 1)

    def test_base_fallback_commits_nothing_extra(self):
        memory = PhysicalMemory(2 * HUGE_PAGE_SIZE)
        memory.fragment(1.0)
        thp = GreedyTHP(memory, allow_compaction=False)
        thp.handle_fault(PageTable(), BASE)
        assert thp.stats.bloat_pages == 0


class TestPromotionBloat:
    def test_bloat_is_unmapped_tail_of_promoted_region(self):
        engine = PromotionEngine(PhysicalMemory(8 * HUGE_PAGE_SIZE))
        table = PageTable(pid=1)
        for page in range(10):  # 10 of 512 pages mapped
            table.map_base(BASE + page * 4096, frame=page)
        engine.run_interval(
            [CandidateRecord(pid=1, core=0, tag=REGION, frequency=5)],
            {1: table},
        )
        assert engine.stats.bloat_pages == PAGES_PER_HUGE - 10

    def test_fully_mapped_region_promotes_bloat_free(self):
        engine = PromotionEngine(PhysicalMemory(8 * HUGE_PAGE_SIZE))
        table = PageTable(pid=1)
        for page in range(PAGES_PER_HUGE):
            table.map_base(BASE + page * 4096, frame=page)
        engine.run_interval(
            [CandidateRecord(pid=1, core=0, tag=REGION, frequency=5)],
            {1: table},
        )
        assert engine.stats.bloat_pages == 0
