"""Additional physical-memory scenarios: compaction mechanics."""

import pytest

from repro.os.physmem import FrameState, OutOfMemoryError, PhysicalMemory
from repro.vm.address import HUGE_PAGE_SIZE, PAGES_PER_HUGE


def make_mem(frames=8):
    return PhysicalMemory(frames * HUGE_PAGE_SIZE)


class TestCompactionMechanics:
    def test_compaction_prefers_emptiest_source(self):
        mem = make_mem(4)
        # frame 0: 3 pages; frame 1: 500 pages (room to absorb 3)
        mem.allocate_base(count=3)
        mem._fill_cursor = 1
        mem.allocate_base(count=500)
        # consume the two free frames as huge pages
        mem.allocate_huge()
        mem.allocate_huge()
        frame, migrated = mem.allocate_huge(allow_compaction=True)
        # the 3-page frame is the cheaper source
        assert migrated == 3

    def test_compaction_fails_without_destination_capacity(self):
        mem = make_mem(2)
        # two frames nearly full: no destination slack anywhere
        mem.allocate_base(count=PAGES_PER_HUGE)
        mem.allocate_base(count=PAGES_PER_HUGE - 1)
        with pytest.raises(OutOfMemoryError):
            mem.allocate_huge(allow_compaction=True)

    def test_compaction_never_uses_free_frames_as_destination(self):
        mem = make_mem(3)
        mem.allocate_base(count=5)  # frame 0 partial
        # frames 1, 2 free; compaction should NOT be needed at all
        frame, migrated = mem.allocate_huge(allow_compaction=True)
        assert migrated == 0
        # and the partial frame is untouched
        assert mem._frames[0].used_base_pages == 5

    def test_migrated_pages_counted_in_stats(self):
        mem = make_mem(3)
        mem.allocate_base(count=7)  # frame 0
        first, _ = mem.allocate_huge()  # frame 1
        mem.allocate_huge()  # frame 2: now nothing free
        mem.free_huge(first, as_base_pages=10)  # frame 1 partial again
        frame, migrated = mem.allocate_huge(allow_compaction=True)
        # the 7-page frame is the emptiest source; its pages moved
        assert migrated == 7
        assert mem.stats.pages_migrated == 7


class TestFragmentationRandomized:
    def test_rng_spread_still_pins_exact_count(self):
        import numpy as np

        mem = make_mem(16)
        pinned = mem.fragment(0.5, rng=np.random.default_rng(3))
        assert pinned == 8
        states = [f for f in mem._frames if f.pinned_pages]
        assert len(states) == 8

    def test_fragment_is_idempotent_on_used_memory(self):
        mem = make_mem(4)
        mem.allocate_huge()
        mem.allocate_huge()
        mem.allocate_huge()
        mem.allocate_huge()
        # nothing free: nothing to pin
        assert mem.fragment(1.0) == 0


class TestFrameStateTransitions:
    def test_full_lifecycle(self):
        mem = make_mem(2)
        frame, _ = mem.allocate_huge()
        assert mem._frames[frame].state is FrameState.HUGE
        mem.free_huge(frame, as_base_pages=PAGES_PER_HUGE)
        assert mem._frames[frame].state is FrameState.PARTIAL
        released = mem.release_base_pages(PAGES_PER_HUGE)
        assert released == PAGES_PER_HUGE
        assert mem._frames[frame].state is FrameState.FREE
