"""Tests for profile-guided static huge-page allocation (§5.4.2)."""

import numpy as np
import pytest

from repro.os.oracle import (
    StaticHugeAllocator,
    hub_regions_from_profile,
)
from repro.os.physmem import PhysicalMemory
from repro.trace.events import Trace
from repro.vm.address import HUGE_PAGE_SIZE
from repro.vm.pagetable import PageTable

BASE = 0x5555_5540_0000
REGION = BASE >> 21


def make_allocator(regions, frames=8, **kwargs):
    return StaticHugeAllocator(
        PhysicalMemory(frames * HUGE_PAGE_SIZE), regions, **kwargs
    )


class TestStaticAllocator:
    def test_annotated_region_gets_huge_at_first_fault(self):
        allocator = make_allocator([REGION])
        table = PageTable()
        assert allocator.handle_fault(table, BASE)
        assert table.is_promoted(REGION)
        assert allocator.stats.huge_faults == 1

    def test_unannotated_region_gets_base(self):
        allocator = make_allocator([REGION])
        table = PageTable()
        other = BASE + 4 * HUGE_PAGE_SIZE
        assert not allocator.handle_fault(table, other)
        assert table.mapped_base_page_count() == 1

    def test_second_fault_in_huge_region_noop_huge(self):
        allocator = make_allocator([REGION])
        table = PageTable()
        allocator.handle_fault(table, BASE)
        # the region is already huge: the fault is satisfied by it...
        # (the simulator would not even fault; calling again must not
        # double-allocate)
        assert table.is_promoted(REGION)

    def test_fragmentation_falls_back_to_base(self):
        allocator = make_allocator([REGION], frames=2)
        allocator.physmem.fragment(1.0)
        allocator.allow_compaction = False
        table = PageTable()
        assert not allocator.handle_fault(table, BASE)
        assert allocator.stats.huge_failures == 1

    def test_base_pages_preexisting_block_huge(self):
        allocator = make_allocator([REGION])
        table = PageTable()
        table.map_base(BASE + 4096, frame=0)
        assert not allocator.handle_fault(table, BASE)


class TestProfileOracle:
    def test_hub_regions_found(self):
        # 20 pages in one region cycled (HUB) + a one-shot sweep elsewhere
        hub_pages = [REGION * 512 + i for i in range(20)]
        sweep = [REGION * 512 + 512 * (2 + i) for i in range(30)]
        sequence = (hub_pages * 5) + sweep
        trace = Trace(
            "t", np.array(sequence, dtype=np.uint64) << np.uint64(12)
        )
        regions = hub_regions_from_profile(trace, threshold=10)
        assert regions[0] == REGION

    def test_limit(self):
        pages = []
        for region in range(4):
            pages += [(REGION + region) * 512 + i for i in range(20)]
        trace = Trace(
            "t", np.array(pages * 3, dtype=np.uint64) << np.uint64(12)
        )
        regions = hub_regions_from_profile(trace, threshold=10, limit=2)
        assert len(regions) == 2


class TestOraclePolicyEndToEnd:
    def test_oracle_matches_pcc_with_good_profile(self):
        """With a fresh profile, static allocation performs at least as
        well as dynamic promotion (no promotion lag, no copies)."""
        import copy

        from repro.config import scaled_config
        from repro.engine.simulation import Simulator
        from repro.experiments.common import memory_for
        from repro.os.kernel import HugePagePolicy, KernelParams
        from repro.workloads.bfs import bfs_workload
        from repro.workloads.graph import kronecker

        workload = bfs_workload(kronecker(scale=11, degree=8))
        trace_regions = hub_regions_from_profile(
            Trace(
                "bfs",
                workload.threads[0].trace.vpns.astype(np.uint64)
                << np.uint64(12),
            ),
            threshold=128,
        )
        config = scaled_config(
            memory_bytes=memory_for(workload),
            promote_every_accesses=workload.total_accesses // 12,
        )
        baseline = Simulator(config, policy=HugePagePolicy.NONE).run(
            [copy.deepcopy(workload)]
        )
        oracle = Simulator(
            config,
            policy=HugePagePolicy.ORACLE,
            params=KernelParams(static_huge_regions=tuple(trace_regions)),
        ).run([copy.deepcopy(workload)])
        pcc = Simulator(config, policy=HugePagePolicy.PCC).run(
            [copy.deepcopy(workload)]
        )
        assert oracle.total_cycles < baseline.total_cycles
        assert oracle.walk_rate < pcc.walk_rate + 0.02
