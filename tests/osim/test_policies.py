"""Unit tests for OS candidate-selection policies."""

from repro.core.dump import CandidateRecord
from repro.os.policies import (
    apply_process_bias,
    deduplicate,
    highest_frequency_order,
    round_robin_order,
)


def rec(pid=1, core=0, tag=0, freq=0):
    return CandidateRecord(pid=pid, core=core, tag=tag, frequency=freq)


class TestHighestFrequency:
    def test_sorts_descending(self):
        records = [rec(tag=1, freq=5), rec(tag=2, freq=9), rec(tag=3, freq=1)]
        ordered = highest_frequency_order(records)
        assert [r.tag for r in ordered] == [2, 1, 3]

    def test_stable_for_ties(self):
        records = [rec(core=0, tag=1, freq=5), rec(core=1, tag=2, freq=5)]
        ordered = highest_frequency_order(records)
        assert [r.tag for r in ordered] == [1, 2]


class TestRoundRobin:
    def test_interleaves_cores(self):
        records = [
            rec(core=0, tag=1), rec(core=0, tag=2),
            rec(core=1, tag=10), rec(core=1, tag=11),
        ]
        ordered = round_robin_order(records)
        assert [r.tag for r in ordered] == [1, 10, 2, 11]

    def test_uneven_queues(self):
        records = [rec(core=0, tag=1), rec(core=1, tag=10), rec(core=1, tag=11)]
        ordered = round_robin_order(records)
        assert [r.tag for r in ordered] == [1, 10, 11]

    def test_preserves_per_core_rank(self):
        records = [rec(core=0, tag=2, freq=1), rec(core=0, tag=1, freq=9)]
        ordered = round_robin_order(records)
        # input order within a core is preserved (it is already ranked)
        assert [r.tag for r in ordered] == [2, 1]

    def test_empty(self):
        assert round_robin_order([]) == []


class TestProcessBias:
    def test_biased_pids_first(self):
        records = [rec(pid=1, tag=1), rec(pid=2, tag=2), rec(pid=1, tag=3)]
        ordered = apply_process_bias(records, biased_pids=[2])
        assert [r.tag for r in ordered] == [2, 1, 3]

    def test_no_bias_is_identity(self):
        records = [rec(pid=1, tag=1), rec(pid=2, tag=2)]
        assert apply_process_bias(records, []) == records

    def test_multiple_biased_pids_preserve_order(self):
        records = [rec(pid=3, tag=1), rec(pid=1, tag=2), rec(pid=2, tag=3)]
        ordered = apply_process_bias(records, biased_pids=[1, 2])
        assert [r.tag for r in ordered] == [2, 3, 1]


class TestDeduplicate:
    def test_keeps_first_occurrence(self):
        records = [
            rec(pid=1, core=0, tag=5, freq=9),
            rec(pid=1, core=1, tag=5, freq=2),
        ]
        unique = deduplicate(records)
        assert len(unique) == 1
        assert unique[0].frequency == 9

    def test_distinguishes_pids(self):
        records = [rec(pid=1, tag=5), rec(pid=2, tag=5)]
        assert len(deduplicate(records)) == 2
