"""Additional HawkEye coverage: interval dynamics over time."""

import pytest

from repro.os.hawkeye import HawkEye
from repro.os.physmem import PhysicalMemory
from repro.vm.address import HUGE_PAGE_SIZE, PAGES_PER_HUGE
from repro.vm.pagetable import PageTable

BASE = 0x5555_5540_0000


def make_hawkeye(frames=16, **kwargs):
    return HawkEye(PhysicalMemory(frames * HUGE_PAGE_SIZE), **kwargs)


def touch_region(table, region_index, pages):
    base = BASE + region_index * HUGE_PAGE_SIZE
    for page in range(pages):
        vaddr = base + page * 4096
        if not table.is_mapped(vaddr):
            table.map_base(vaddr, frame=0)
        table.walk(vaddr)


class TestTemporalCoverage:
    def test_stale_coverage_updates_on_rescan(self):
        """A region hot in interval 1 but idle later is re-measured at
        coverage 0 once the cursor returns to it."""
        hawkeye = make_hawkeye(scan_pages_per_interval=PAGES_PER_HUGE)
        table = PageTable()
        touch_region(table, 0, pages=500)
        hawkeye.measure_interval(table)  # measures region 0 at ~500
        region0 = BASE >> 21
        assert hawkeye._coverage[(table.pid, region0)] == 500
        # region stays idle; cursor wraps back on the next interval
        hawkeye.measure_interval(table)
        assert hawkeye._coverage[(table.pid, region0)] == 0

    def test_continuously_hot_region_stays_in_bucket_nine(self):
        hawkeye = make_hawkeye(scan_pages_per_interval=PAGES_PER_HUGE)
        table = PageTable()
        for _ in range(3):
            touch_region(table, 0, pages=480)
            hawkeye.measure_interval(table)
        buckets = hawkeye.buckets(table.pid)
        assert (BASE >> 21) in buckets[9]

    def test_candidates_capped_by_limit(self):
        hawkeye = make_hawkeye(scan_pages_per_interval=8 * PAGES_PER_HUGE)
        table = PageTable()
        for region in range(5):
            touch_region(table, region, pages=500)
        hawkeye.measure_interval(table)
        assert len(hawkeye.promotion_candidates(table.pid, limit=3)) == 3

    def test_promotion_consumes_candidates_across_intervals(self):
        hawkeye = make_hawkeye(
            scan_pages_per_interval=8 * PAGES_PER_HUGE,
            max_promotions_per_interval=2,
        )
        table = PageTable()
        for region in range(4):
            touch_region(table, region, pages=500)
        hawkeye.measure_interval(table)
        first = hawkeye.promote_interval(table)
        second = hawkeye.promote_interval(table)
        assert len(first) == 2
        assert len(second) == 2
        assert not set(first) & set(second)
