"""Unit tests for physical memory, fragmentation, and compaction."""

import pytest

from repro.os.physmem import (
    FrameState,
    OutOfMemoryError,
    PhysicalMemory,
)
from repro.vm.address import HUGE_PAGE_SIZE, PAGES_PER_HUGE


def make_mem(frames=8):
    return PhysicalMemory(frames * HUGE_PAGE_SIZE)


class TestConstruction:
    def test_frame_count(self):
        assert make_mem(8).total_frames == 8

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(HUGE_PAGE_SIZE - 1)

    def test_initially_all_free(self):
        mem = make_mem(4)
        assert mem.free_huge_frames() == 4
        assert mem.fragmentation_fraction() == 0.0


class TestBaseAllocation:
    def test_allocate_base_consumes_partial_frames(self):
        mem = make_mem(2)
        mem.allocate_base()
        assert mem.free_huge_frames() == 1

    def test_bump_fills_one_frame_before_next(self):
        mem = make_mem(2)
        mem.allocate_base(count=PAGES_PER_HUGE)
        assert mem.free_huge_frames() == 1
        mem.allocate_base()
        assert mem.free_huge_frames() == 0

    def test_oom_when_full(self):
        mem = make_mem(1)
        mem.allocate_base(count=PAGES_PER_HUGE)
        with pytest.raises(OutOfMemoryError):
            mem.allocate_base()

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            make_mem().allocate_base(count=0)

    def test_stats_count_allocations(self):
        mem = make_mem()
        mem.allocate_base(count=5)
        assert mem.stats.base_allocations == 5


class TestHugeAllocation:
    def test_allocate_huge_takes_free_frame(self):
        mem = make_mem(2)
        frame, migrated = mem.allocate_huge()
        assert migrated == 0
        assert mem.huge_frames_in_use() == 1
        assert mem.free_huge_frames() == 1

    def test_oom_without_compaction(self):
        mem = make_mem(2)
        mem.allocate_base()  # frame 0 partial
        mem.allocate_huge()  # frame 1 huge
        with pytest.raises(OutOfMemoryError):
            mem.allocate_huge(allow_compaction=False)
        assert mem.stats.huge_failures == 1

    def test_compaction_recovers_movable_frame(self):
        mem = make_mem(3)
        mem.allocate_base()  # frame 0: 1 movable page
        mem.allocate_huge()  # frame 1
        mem.allocate_huge()  # frame 2
        # no free frames; frame 0 is compactable but needs a destination
        # inside another partial frame — create one by fragmenting? Use
        # a second partial frame: free a huge frame as base pages.
        mem.free_huge(1, as_base_pages=10)
        frame, migrated = mem.allocate_huge(allow_compaction=True)
        assert migrated >= 1
        assert mem.stats.compactions == 1


class TestFragmentation:
    def test_fraction_pins_frames(self):
        mem = make_mem(10)
        pinned = mem.fragment(0.5)
        assert pinned == 5
        assert mem.free_huge_frames() == 0  # rest got movable scatter

    def test_scatter_movable_disabled(self):
        mem = make_mem(10)
        mem.fragment(0.5, scatter_movable=False)
        assert mem.free_huge_frames() == 5

    def test_pinned_frames_never_compacted(self):
        mem = make_mem(4)
        mem.fragment(1.0)
        assert mem.compactable_frames() == 0
        with pytest.raises(OutOfMemoryError):
            mem.allocate_huge(allow_compaction=True)

    def test_scattered_frames_recoverable_by_compaction(self):
        mem = make_mem(10)
        mem.fragment(0.5)
        # the 5 scattered frames hold 1 movable page each; pinned frames
        # have room to absorb them
        frame, migrated = mem.allocate_huge(allow_compaction=True)
        assert migrated == 1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            make_mem().fragment(1.5)

    def test_zero_fraction_noop(self):
        mem = make_mem(4)
        mem.fragment(0.0)
        assert mem.free_huge_frames() == 4

    def test_fragmentation_fraction_reporting(self):
        mem = make_mem(10)
        mem.fragment(0.3, scatter_movable=False)
        assert mem.fragmentation_fraction() == pytest.approx(0.3)


class TestReleaseAndFree:
    def test_release_base_pages_frees_frames(self):
        mem = make_mem(2)
        mem.allocate_base(count=10)
        released = mem.release_base_pages(10)
        assert released == 10
        assert mem.free_huge_frames() == 2

    def test_release_never_touches_pinned(self):
        mem = make_mem(2)
        mem.fragment(1.0)
        released = mem.release_base_pages(5)
        assert released == 0
        assert mem.free_huge_frames() == 0

    def test_release_bounded_by_live_pages(self):
        mem = make_mem(2)
        mem.allocate_base(count=3)
        assert mem.release_base_pages(100) == 3

    def test_release_negative_rejected(self):
        with pytest.raises(ValueError):
            make_mem().release_base_pages(-1)

    def test_free_huge_to_free(self):
        mem = make_mem(2)
        frame, _ = mem.allocate_huge()
        mem.free_huge(frame)
        assert mem.free_huge_frames() == 2

    def test_free_huge_as_base_pages(self):
        mem = make_mem(2)
        frame, _ = mem.allocate_huge()
        mem.free_huge(frame, as_base_pages=100)
        assert mem.free_huge_frames() == 1
        assert mem.huge_frames_in_use() == 0

    def test_free_huge_wrong_state(self):
        mem = make_mem(2)
        with pytest.raises(ValueError):
            mem.free_huge(0)

    def test_free_huge_too_many_base_pages(self):
        mem = make_mem(2)
        frame, _ = mem.allocate_huge()
        with pytest.raises(ValueError):
            mem.free_huge(frame, as_base_pages=PAGES_PER_HUGE + 1)


class TestAccountingInvariant:
    def test_page_conservation_through_promote_cycle(self):
        """allocate base -> release on promote -> demote back."""
        mem = make_mem(4)
        mem.allocate_base(count=512)
        frame, _ = mem.allocate_huge()
        mem.release_base_pages(512)
        # demotion splits the huge page back into base pages
        mem.free_huge(frame, as_base_pages=512)
        used = sum(
            f.used_base_pages for f in mem._frames
        )
        assert used == 512
