"""Unit tests for the HawkEye baseline."""

import pytest

from repro.os.hawkeye import BUCKET_WIDTH, NUM_BUCKETS, HawkEye, bucket_of
from repro.os.physmem import PhysicalMemory
from repro.vm.address import HUGE_PAGE_SIZE, PAGES_PER_HUGE
from repro.vm.pagetable import PageTable

BASE = 0x5555_5540_0000


def make_hawkeye(frames=8, **kwargs):
    return HawkEye(PhysicalMemory(frames * HUGE_PAGE_SIZE), **kwargs)


def table_with_coverage(coverages):
    """Build a table whose region i has `coverages[i]` accessed pages."""
    table = PageTable()
    for region_index, coverage in enumerate(coverages):
        region_base = BASE + region_index * HUGE_PAGE_SIZE
        for page in range(max(coverage, 1)):
            table.map_base(region_base + page * 4096, frame=0)
        for page in range(coverage):
            table.walk(region_base + page * 4096)
    return table


class TestBucketing:
    def test_bucket_boundaries(self):
        assert bucket_of(0) == 0
        assert bucket_of(49) == 0
        assert bucket_of(50) == 1
        assert bucket_of(449) == 8
        assert bucket_of(450) == 9
        assert bucket_of(512) == 9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bucket_of(-1)

    def test_bucket_constants(self):
        assert BUCKET_WIDTH == 50
        assert NUM_BUCKETS == 10


class TestMeasurement:
    def test_measures_coverage_into_buckets(self):
        hawkeye = make_hawkeye()
        table = table_with_coverage([500, 60, 10])
        hawkeye.measure_interval(table)
        buckets = hawkeye.buckets(table.pid)
        region0 = BASE >> 21
        assert region0 in buckets[9]
        assert region0 + 1 in buckets[1]
        assert region0 + 2 in buckets[0]

    def test_accessed_bits_reset_after_scan(self):
        hawkeye = make_hawkeye()
        table = table_with_coverage([100])
        hawkeye.measure_interval(table)
        assert table.accessed_pages_in_region(BASE >> 21) == 0

    def test_scan_budget_limits_regions_per_interval(self):
        hawkeye = make_hawkeye(scan_pages_per_interval=PAGES_PER_HUGE)
        table = table_with_coverage([10, 10, 10])
        hawkeye.measure_interval(table)
        assert len(hawkeye._coverage) == 1
        hawkeye.measure_interval(table)
        assert len(hawkeye._coverage) == 2

    def test_empty_table(self):
        hawkeye = make_hawkeye()
        hawkeye.measure_interval(PageTable())
        assert hawkeye.stats.intervals == 1


class TestPromotion:
    def test_promotes_highest_bucket_first(self):
        hawkeye = make_hawkeye(max_promotions_per_interval=1)
        table = table_with_coverage([60, 500])
        hawkeye.measure_interval(table)
        promoted = hawkeye.promote_interval(table)
        assert promoted == [(BASE >> 21) + 1]

    def test_promotion_rate_limited(self):
        hawkeye = make_hawkeye(max_promotions_per_interval=2)
        table = table_with_coverage([500, 500, 500])
        hawkeye.measure_interval(table)
        assert len(hawkeye.promote_interval(table)) == 2

    def test_promotion_failure_under_pressure(self):
        hawkeye = make_hawkeye(frames=2)
        hawkeye.physmem.fragment(1.0)
        table = table_with_coverage([500])
        hawkeye.measure_interval(table)
        assert hawkeye.promote_interval(table) == []
        assert hawkeye.stats.promotion_failures == 1

    def test_promoted_region_leaves_candidate_pool(self):
        hawkeye = make_hawkeye()
        table = table_with_coverage([500])
        hawkeye.measure_interval(table)
        hawkeye.promote_interval(table)
        assert hawkeye.promotion_candidates(table.pid, 10) == []

    def test_coverage_blindness_to_frequency(self):
        """The paper's critique: 25%-utilized but hot regions rank below
        fully-covered cold ones."""
        hawkeye = make_hawkeye(max_promotions_per_interval=1)
        table = table_with_coverage([500, 128])
        # region 1 is walked very frequently on its few pages
        for _ in range(50):
            table.walk(BASE + HUGE_PAGE_SIZE)
        hawkeye.measure_interval(table)
        promoted = hawkeye.promote_interval(table)
        assert promoted == [BASE >> 21]  # the cold-but-covered one wins
