"""Unit tests for the Linux THP baselines (greedy + khugepaged)."""

import pytest

from repro.os.physmem import PhysicalMemory
from repro.os.thp import GreedyTHP, Khugepaged
from repro.vm.address import HUGE_PAGE_SIZE, PAGES_PER_HUGE
from repro.vm.pagetable import PageTable

BASE = 0x5555_5540_0000


def make_mem(frames=8):
    return PhysicalMemory(frames * HUGE_PAGE_SIZE)


class TestGreedyFault:
    def test_first_touch_gets_huge_page(self):
        mem = make_mem()
        thp = GreedyTHP(mem)
        table = PageTable()
        used_huge, _ = thp.handle_fault(table, BASE)
        assert used_huge
        assert table.is_promoted(BASE >> 21)
        assert thp.stats.fault_huge == 1

    def test_bloat_accounting(self):
        mem = make_mem()
        thp = GreedyTHP(mem)
        thp.handle_fault(PageTable(), BASE)
        assert thp.stats.bloat_pages == PAGES_PER_HUGE - 1

    def test_ineligible_region_gets_base_page(self):
        mem = make_mem()
        thp = GreedyTHP(mem)
        table = PageTable()
        used_huge, _ = thp.handle_fault(table, BASE, region_eligible=False)
        assert not used_huge
        assert table.mapped_base_page_count() == 1

    def test_disabled_thp_always_base(self):
        thp = GreedyTHP(make_mem(), enabled=False)
        table = PageTable()
        used_huge, _ = thp.handle_fault(table, BASE)
        assert not used_huge

    def test_second_fault_in_region_uses_base(self):
        """Once a region holds base pages, greedy cannot map it huge."""
        mem = make_mem()
        thp = GreedyTHP(mem)
        table = PageTable()
        thp.handle_fault(table, BASE, region_eligible=False)
        used_huge, _ = thp.handle_fault(table, BASE + 4096)
        assert not used_huge

    def test_fragmented_memory_falls_back_to_base(self):
        mem = make_mem(4)
        mem.fragment(1.0)
        thp = GreedyTHP(mem, allow_compaction=False)
        table = PageTable()
        used_huge, _ = thp.handle_fault(table, BASE)
        assert not used_huge
        assert thp.stats.fault_huge_failed == 1

    def test_scattered_fragmentation_defeats_fault_path(self):
        """Movable-only fragmentation still blocks no-compaction faults."""
        mem = make_mem(4)
        mem.fragment(0.25)  # 1 pinned + 3 scattered movable
        thp = GreedyTHP(mem, allow_compaction=False)
        used_huge, _ = thp.handle_fault(PageTable(), BASE)
        assert not used_huge


class TestKhugepaged:
    def _table_with_regions(self, count):
        table = PageTable()
        for region in range(count):
            table.map_base(BASE + region * HUGE_PAGE_SIZE, frame=region)
        return table

    def test_promotes_in_scan_order(self):
        mem = make_mem(8)
        daemon = Khugepaged(mem, scan_pages_per_interval=2 * PAGES_PER_HUGE)
        table = self._table_with_regions(4)
        promoted = daemon.scan_interval(table)
        assert promoted == [BASE >> 21, (BASE >> 21) + 1]

    def test_scan_budget_limits_rate(self):
        mem = make_mem(8)
        daemon = Khugepaged(mem, scan_pages_per_interval=PAGES_PER_HUGE)
        table = self._table_with_regions(4)
        assert len(daemon.scan_interval(table)) == 1

    def test_cursor_resumes_across_intervals(self):
        mem = make_mem(8)
        daemon = Khugepaged(mem, scan_pages_per_interval=PAGES_PER_HUGE)
        table = self._table_with_regions(3)
        first = daemon.scan_interval(table)
        second = daemon.scan_interval(table)
        assert first != second
        assert len(set(first + second)) == 2

    def test_empty_table_no_promotions(self):
        daemon = Khugepaged(make_mem())
        assert daemon.scan_interval(PageTable()) == []

    def test_stops_on_memory_exhaustion(self):
        mem = make_mem(2)
        mem.fragment(1.0)
        daemon = Khugepaged(mem, allow_compaction=False)
        table = self._table_with_regions(2)
        assert daemon.scan_interval(table) == []

    def test_skips_already_promoted(self):
        mem = make_mem(8)
        daemon = Khugepaged(mem, scan_pages_per_interval=8 * PAGES_PER_HUGE)
        table = self._table_with_regions(2)
        daemon.scan_interval(table)
        assert daemon.scan_interval(table) == []

    def test_releases_collapsed_base_pages(self):
        mem = make_mem(8)
        table = PageTable()
        mem.allocate_base()
        table.map_base(BASE, frame=0)
        daemon = Khugepaged(mem)
        daemon.scan_interval(table)
        # the huge frame is used, but the old base page was released
        assert mem.free_huge_frames() == 7
