"""Unit tests for the simulated kernel."""

import pytest

from repro.config import tiny_config
from repro.core.dump import CandidateRecord
from repro.os.kernel import HugePagePolicy, KernelParams, SimulatedKernel
from repro.vm.address import HUGE_PAGE_SIZE
from repro.vm.layout import AddressSpaceLayout

BASE_LAYOUT_ADDR = 0x5555_5540_0000


def layout_with(length=4 << 20):
    layout = AddressSpaceLayout()
    layout.allocate("data", length)
    return layout


def make_kernel(policy=HugePagePolicy.PCC, fragmentation=0.0, **params):
    return SimulatedKernel(
        tiny_config(),
        policy=policy,
        params=KernelParams(**params) if params else None,
        fragmentation=fragmentation,
    )


class TestProcessManagement:
    def test_spawn_assigns_pids(self):
        kernel = make_kernel()
        first = kernel.spawn(layout_with())
        second = kernel.spawn(layout_with())
        assert first.pid == 1
        assert second.pid == 2

    def test_spawn_duplicate_pid_rejected(self):
        kernel = make_kernel()
        kernel.spawn(layout_with(), pid=1)
        with pytest.raises(ValueError):
            kernel.spawn(layout_with(), pid=1)

    def test_page_tables_map(self):
        kernel = make_kernel()
        process = kernel.spawn(layout_with())
        assert kernel.page_tables() == {1: process.page_table}


class TestFaultPath:
    def test_baseline_faults_base_pages(self):
        kernel = make_kernel(policy=HugePagePolicy.NONE)
        process = kernel.spawn(layout_with())
        vaddr = process.layout["data"].start
        kernel.handle_fault(1, vaddr)
        assert process.page_table.mapped_base_page_count() == 1
        huge, base, migrated = kernel.drain_fault_work()
        assert (huge, base) == (0, 1)

    def test_linux_thp_faults_huge_when_eligible(self):
        kernel = make_kernel(policy=HugePagePolicy.LINUX_THP)
        process = kernel.spawn(layout_with(4 << 20))
        vaddr = process.layout["data"].start
        kernel.handle_fault(1, vaddr)
        assert process.page_table.is_promoted(vaddr >> 21)
        huge, base, _ = kernel.drain_fault_work()
        assert huge == 1

    def test_small_vma_not_thp_eligible(self):
        kernel = make_kernel(policy=HugePagePolicy.LINUX_THP)
        process = kernel.spawn(layout_with(4096))
        vaddr = process.layout["data"].start
        kernel.handle_fault(1, vaddr)
        assert not process.page_table.is_promoted(vaddr >> 21)

    def test_ideal_ignores_eligibility(self):
        kernel = make_kernel(policy=HugePagePolicy.IDEAL)
        process = kernel.spawn(layout_with(4096))
        vaddr = process.layout["data"].start
        kernel.handle_fault(1, vaddr)
        assert process.page_table.is_promoted(vaddr >> 21)

    def test_drain_resets(self):
        kernel = make_kernel(policy=HugePagePolicy.NONE)
        kernel.spawn(layout_with())
        kernel.handle_fault(1, BASE_LAYOUT_ADDR)
        kernel.drain_fault_work()
        assert kernel.drain_fault_work() == (0, 0, 0)


class TestPromotionTick:
    def _fault_region(self, kernel, process, region_offset=0):
        vaddr = process.layout["data"].start + region_offset * HUGE_PAGE_SIZE
        kernel.handle_fault(1, vaddr)
        return vaddr >> 21

    def test_pcc_policy_consumes_records(self):
        kernel = make_kernel(policy=HugePagePolicy.PCC)
        process = kernel.spawn(layout_with())
        prefix = self._fault_region(kernel, process)
        outcome = kernel.promotion_tick(
            pcc_records=[CandidateRecord(pid=1, core=0, tag=prefix, frequency=5)]
        )
        assert len(outcome.promoted) == 1
        assert kernel.total_huge_pages() == 1
        assert kernel.huge_pages_of(1) == 1

    def test_baseline_policy_never_promotes(self):
        kernel = make_kernel(policy=HugePagePolicy.NONE)
        process = kernel.spawn(layout_with())
        self._fault_region(kernel, process)
        outcome = kernel.promotion_tick()
        assert outcome.promoted == []

    def test_linux_policy_uses_khugepaged(self):
        kernel = make_kernel(policy=HugePagePolicy.LINUX_THP, fragmentation=0.5)
        process = kernel.spawn(layout_with())
        # greedy fails under fragmentation; fault in a base page
        prefix = self._fault_region(kernel, process)
        outcome = kernel.promotion_tick()
        assert [r.tag for r in outcome.promoted] == [prefix]

    def test_hawkeye_policy_promotes_covered_regions(self):
        kernel = make_kernel(policy=HugePagePolicy.HAWKEYE)
        process = kernel.spawn(layout_with())
        self._fault_region(kernel, process)
        process.page_table.walk(process.layout["data"].start)
        # first tick measures; promotion happens once coverage is known
        kernel.promotion_tick()
        outcome = kernel.promotion_tick()
        total = kernel.total_huge_pages()
        assert total >= 1 or len(outcome.promoted) >= 0  # promoted by either tick
        assert kernel.total_huge_pages() == 1

    def test_hawkeye_budget_respected(self):
        kernel = SimulatedKernel(
            tiny_config(),
            policy=HugePagePolicy.HAWKEYE,
            params=KernelParams(promotion_budget_regions=0),
        )
        process = kernel.spawn(layout_with())
        self._fault_region(kernel, process)
        process.page_table.walk(process.layout["data"].start)
        kernel.promotion_tick()
        kernel.promotion_tick()
        assert kernel.total_huge_pages() == 0

    def test_shootdown_callback_forwarded(self):
        kernel = make_kernel(policy=HugePagePolicy.PCC)
        process = kernel.spawn(layout_with())
        prefix = self._fault_region(kernel, process)
        seen = []
        kernel.promotion_tick(
            pcc_records=[CandidateRecord(pid=1, core=0, tag=prefix, frequency=5)],
            on_shootdown=lambda pid, pfx: seen.append((pid, pfx)),
        )
        assert seen == [(1, prefix)]


class TestFragmentationSetup:
    def test_fragmentation_applied_at_boot(self):
        kernel = make_kernel(policy=HugePagePolicy.NONE, fragmentation=0.5)
        assert kernel.physmem.free_huge_frames() == 0
        assert kernel.physmem.compactable_frames() > 0
