"""Units for the staged machine pipeline and the Simulator facade."""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.engine.machine import (
    Machine,
    OsTickDriver,
    ThreadScheduler,
    TranslationPipeline,
)
from repro.engine.cpu import Core
from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy
from tests.conftest import make_workload

BASE = 0x5555_5540_0000


def _addresses(pages):
    return np.uint64(BASE) + np.array(pages, dtype=np.uint64) * np.uint64(4096)


class TestThreadScheduler:
    def test_round_robin_retires_exhausted_slots(self):
        scheduler = ThreadScheduler(quantum=4)
        a = scheduler.add([1, 2], [1, 1], pid=1, core_id=0,
                          seen=set(), fault=lambda v: None)
        b = scheduler.add([3], [1], pid=2, core_id=1,
                          seen=set(), fault=lambda v: None)
        assert scheduler.remaining == 3
        assert list(scheduler.next_round()) == [a, b]
        scheduler.advance(a, 2)
        scheduler.advance(b, 1)
        assert scheduler.remaining == 0
        assert list(scheduler.next_round()) == []
        assert not a.live and not b.live

    def test_advance_tracks_partial_progress(self):
        scheduler = ThreadScheduler(quantum=4)
        slot = scheduler.add([1, 2, 3], [1, 1, 1], pid=1, core_id=0,
                             seen=set(), fault=lambda v: None)
        scheduler.advance(slot, 1)
        assert scheduler.remaining == 2
        assert list(scheduler.next_round()) == [slot]


class TestTranslationPipelineHints:
    def _pipeline(self):
        return TranslationPipeline(Core(tiny_config()), fast_path=True)

    def test_invalidate_hints_bumps_epoch_and_clears(self):
        pipeline = self._pipeline()
        pipeline._base_mru[0] = 42
        pipeline._huge_mru[0] = 7
        pipeline.invalidate_hints()
        assert pipeline.epoch == 1
        assert pipeline.invalidations == 1
        assert set(pipeline._base_mru) == {-1}
        assert set(pipeline._huge_mru) == {-1}

    def test_sync_flushes_batched_counters_exactly_once(self):
        """Fast hits reach the canonical stats via sync, not before."""
        machine = Machine(tiny_config(), policy=HugePagePolicy.NONE)
        # alternate two pages: after each page's first (slow) access,
        # both stay MRU of their distinct sets, so the rest memo-hit
        result = machine.run([make_workload(_addresses([0, 1] * 25))])
        pipeline = machine.pipelines[0]
        assert pipeline.fast_hits > 0
        assert pipeline._pending_accesses == 0  # fully flushed
        core = machine.cores[0]
        assert core.stats.accesses == result.accesses == 50
        assert core.stats.l1_hits == result.l1_hits
        assert core.tlb.accesses == core.tlb.l1_base.stats.accesses

    def test_fast_path_off_never_counts_fast_hits(self):
        machine = Machine(
            tiny_config(), policy=HugePagePolicy.NONE, fast_path=False
        )
        machine.run([make_workload(_addresses([0, 1] * 25))])
        assert machine.pipelines[0].fast_hits == 0
        assert machine.pipelines[0].slow_records == 50


class TestOsTickDriver:
    def test_regular_tick_resets_interval_and_samples(self):
        # small quantum so round boundaries (where ticks fire) are hit
        # many times across the 800-access trace
        machine = Machine(
            tiny_config(), policy=HugePagePolicy.PCC, thread_quantum=64
        )
        result = machine.run([make_workload(_addresses(list(range(200)) * 4))])
        # tiny_config ticks every 64 accesses: several regular ticks
        assert len(result.promotion_timeline) >= 2
        assert len(result.huge_page_timeline) == len(result.promotion_timeline)
        # metrics samples align 1:1 with the promotion timeline
        sample_ats = [s["at"] for s in result.metrics["samples"]]
        assert sample_ats == [at for at, _ in result.promotion_timeline]

    def test_final_tick_records_when_nothing_ever_ticked(self):
        driver_config = tiny_config()
        machine = Machine(driver_config, policy=HugePagePolicy.NONE)
        result = machine.run([make_workload(_addresses([1, 2, 3]))])
        # run far below the interval: exactly the final-tick record
        assert len(result.promotion_timeline) == 1

    def test_due_flag(self):
        ticks = OsTickDriver(kernel=None, interval=10, tick_fn=None)
        ticks.note(9)
        assert not ticks.due
        ticks.note(1)
        assert ticks.due


class TestPerPidWalkAttribution:
    def test_processes_sharing_a_core_do_not_double_count(self):
        """Two processes pinned to one core: per-process walks must
        partition the total, not each inherit the core's sum."""
        w1 = make_workload(_addresses(range(0, 120)), name="p1")
        w2 = make_workload(_addresses(range(200, 320)), name="p2")
        for w in (w1, w2):
            w.threads[0].core = 0
        result = Simulator(
            tiny_config(), policy=HugePagePolicy.NONE
        ).run([w1, w2])
        per_process = [p.walks for p in result.processes]
        assert sum(per_process) == result.walks
        assert all(w > 0 for w in per_process)

    def test_single_process_gets_all_walks(self):
        result = Simulator(tiny_config(), policy=HugePagePolicy.NONE).run(
            [make_workload(_addresses(range(100)))]
        )
        assert result.processes[0].walks == result.walks


class TestSimulatorFacade:
    def test_delegated_surface(self):
        config = tiny_config()
        simulator = Simulator(config, policy=HugePagePolicy.PCC)
        assert simulator.config is config
        assert simulator.policy is HugePagePolicy.PCC
        assert simulator.kernel is simulator.machine.kernel
        assert simulator.dump_region is simulator.machine.dump_region
        simulator.thread_quantum = 128
        assert simulator.machine.thread_quantum == 128

    def test_promotion_tick_override_is_honored(self):
        """Subclass ticks must flow through the machine's tick driver."""
        calls = []

        class Custom(Simulator):
            def _promotion_tick(self, cores, ledgers):
                calls.append(len(cores))
                return super()._promotion_tick(cores, ledgers)

        simulator = Custom(tiny_config(), policy=HugePagePolicy.PCC)
        simulator.run([make_workload(_addresses(list(range(100)) * 3))])
        assert calls  # at least the final tick
        assert all(n == 1 for n in calls)

    def test_pinning_beyond_core_count_raises(self):
        workload = make_workload(_addresses([1, 2, 3]))
        workload.threads[0].core = 5
        with pytest.raises(ValueError, match="pinned to core 5"):
            Simulator(tiny_config(), policy=HugePagePolicy.NONE).run([workload])

    def test_result_carries_metrics_export(self):
        result = Simulator(tiny_config(), policy=HugePagePolicy.NONE).run(
            [make_workload(_addresses([1, 2, 3]))]
        )
        assert result.metrics["schema"] == "repro.metrics/v1"
        assert result.metrics["meta"]["policy"] == "none"
        assert result.metrics["meta"]["fast_path"] is True
