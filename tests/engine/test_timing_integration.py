"""Cycle-accounting consistency across a full simulation."""

import pytest

from repro.config import tiny_config
from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy
from tests.conftest import make_workload
from tests.engine.test_simulation import hot_cold_addresses


class TestLedgerConsistency:
    def test_base_cycles_match_access_count(self, config):
        workload = make_workload(hot_cold_addresses(repeats=1000))
        result = Simulator(config, policy=HugePagePolicy.NONE).run([workload])
        expected = result.accesses * config.timing.base_cycles_per_access
        assert sum(b.base for b in result.per_core) == expected

    def test_total_is_componentwise_sum(self, config):
        workload = make_workload(hot_cold_addresses(repeats=1000))
        result = Simulator(config, policy=HugePagePolicy.PCC).run([workload])
        breakdown = result.per_core[0]
        assert breakdown.total == (
            breakdown.base
            + breakdown.translation
            + breakdown.kernel
            + breakdown.serialization
        )
        assert result.total_cycles == breakdown.total

    def test_translation_cycles_zero_when_all_hits(self, config):
        # one page hammered: after the first walk, everything L1-hits
        import numpy as np

        addresses = np.full(2000, 0x5555_5540_0000, dtype=np.uint64)
        result = Simulator(config, policy=HugePagePolicy.NONE).run(
            [make_workload(addresses)]
        )
        walk_floor = config.walker.memory_ref_cycles  # the single walk
        assert sum(b.translation for b in result.per_core) < walk_floor * 5

    def test_kernel_cycles_only_with_kernel_work(self, config):
        baseline = Simulator(config, policy=HugePagePolicy.NONE).run(
            [make_workload(hot_cold_addresses(repeats=1500))]
        )
        pcc = Simulator(config, policy=HugePagePolicy.PCC).run(
            [make_workload(hot_cold_addresses(repeats=1500))]
        )
        base_kernel = sum(b.kernel for b in baseline.per_core)
        pcc_kernel = sum(b.kernel for b in pcc.per_core)
        # baseline pays only fault-time zeroing; the PCC adds promotion
        # copies and shootdowns
        assert pcc_kernel > base_kernel

    def test_promotion_work_charged_once_per_event(self, config):
        workload = make_workload(hot_cold_addresses(repeats=2500))
        simulator = Simulator(config, policy=HugePagePolicy.PCC)
        result = simulator.run([workload])
        timing = config.timing
        kernel_cycles = sum(b.kernel for b in result.per_core)
        minimum = result.promotions * timing.promotion_cycles
        assert kernel_cycles >= minimum
