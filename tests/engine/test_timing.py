"""Unit tests for cycle accounting."""

import pytest

from repro.config import TimingConfig
from repro.engine.timing import CycleAccounting, RuntimeBreakdown, speedup


@pytest.fixture
def ledger():
    return CycleAccounting(TimingConfig())


class TestCharges:
    def test_base_access_charge(self, ledger):
        ledger.charge_accesses(10)
        assert ledger.base_cycles == 10 * TimingConfig().base_cycles_per_access

    def test_translation_charge(self, ledger):
        ledger.charge_translation(123)
        assert ledger.translation_cycles == 123

    def test_fault_work_charge(self, ledger):
        config = TimingConfig()
        ledger.charge_fault_work(huge_zeroes=2, base_zeroes=3, migrated_pages=4)
        expected = (
            2 * config.huge_zero_cycles
            + 3 * config.base_zero_cycles
            + 4 * config.compaction_page_cycles
        )
        assert ledger.kernel_cycles == expected

    def test_promotion_charge_scales_with_cores(self, ledger):
        config = TimingConfig()
        ledger.charge_promotions(
            promotions=1, shootdown_broadcasts=1, migrated_pages=0, cores=4
        )
        assert ledger.kernel_cycles == (
            config.promotion_cycles + 4 * config.shootdown_cycles
        )

    def test_total_is_sum(self, ledger):
        ledger.charge_accesses(1)
        ledger.charge_translation(5)
        ledger.charge_serialization(7)
        assert ledger.total_cycles == (
            TimingConfig().base_cycles_per_access + 5 + 7
        )

    def test_merge(self, ledger):
        other = CycleAccounting(TimingConfig())
        other.charge_translation(10)
        ledger.charge_translation(5)
        ledger.merge(other)
        assert ledger.translation_cycles == 15


class TestSpeedup:
    def test_ratio(self):
        assert speedup(200, 100) == 2.0

    def test_invalid_cycles(self):
        with pytest.raises(ValueError):
            speedup(100, 0)


class TestBreakdown:
    def test_of_ledger(self, ledger):
        ledger.charge_accesses(10)
        ledger.charge_translation(60)
        breakdown = RuntimeBreakdown.of(ledger)
        assert breakdown.total == ledger.total_cycles
        assert 0 < breakdown.translation_share < 1

    def test_translation_share_empty(self):
        assert RuntimeBreakdown(0, 0, 0).translation_share == 0.0
