"""Tests for promotion-schedule persistence."""

import json

import pytest

from repro.core.dump import CandidateRecord
from repro.engine.offline import PromotionSchedule, ScheduledPromotion
from repro.engine.schedule_io import load_schedule, save_schedule
from repro.vm.address import PageSize


def make_schedule():
    schedule = PromotionSchedule()
    for i, (tag, freq) in enumerate([(100, 9), (200, 3), (100, 1)]):
        schedule.entries.append(
            ScheduledPromotion(
                at_access=1000 * (i + 1),
                record=CandidateRecord(
                    pid=1, core=0, tag=tag, frequency=freq,
                    page_size=PageSize.HUGE,
                ),
            )
        )
    return schedule


class TestRoundTrip:
    def test_preserves_entries(self, tmp_path):
        schedule = make_schedule()
        path = save_schedule(schedule, tmp_path / "sched.jsonl")
        loaded = load_schedule(path)
        assert len(loaded) == 3
        assert loaded.entries[0].at_access == 1000
        assert loaded.entries[0].record.tag == 100
        assert loaded.entries[0].record.frequency == 9
        assert loaded.entries[0].record.page_size is PageSize.HUGE

    def test_regions_helper_after_load(self, tmp_path):
        path = save_schedule(make_schedule(), tmp_path / "s.jsonl")
        assert load_schedule(path).regions() == [100, 200]

    def test_creates_parents(self, tmp_path):
        path = save_schedule(make_schedule(), tmp_path / "a" / "b" / "s.jsonl")
        assert path.exists()

    def test_empty_schedule(self, tmp_path):
        path = save_schedule(PromotionSchedule(), tmp_path / "e.jsonl")
        assert len(load_schedule(path)) == 0


class TestValidation:
    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_schedule(path)

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "wrong.jsonl"
        path.write_text(json.dumps({"format": "other", "version": 1}) + "\n")
        with pytest.raises(ValueError, match="not a promotion schedule"):
            load_schedule(path)

    def test_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps(
                {"format": "pcc-promotion-schedule", "version": 9, "entries": 0}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="version"):
            load_schedule(path)

    def test_rejects_truncated(self, tmp_path):
        path = save_schedule(make_schedule(), tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            load_schedule(path)


class TestEndToEnd:
    def test_recorded_schedule_survives_disk(self, tmp_path, config):
        """Record -> save -> load -> replay matches direct replay."""
        from repro.engine.offline import record_candidates, replay_with_schedule
        from tests.conftest import make_workload
        from tests.engine.test_simulation import hot_cold_addresses

        addresses = hot_cold_addresses(repeats=2000)
        schedule = record_candidates(make_workload(addresses), config)
        path = save_schedule(schedule, tmp_path / "s.jsonl")
        loaded = load_schedule(path)
        direct = replay_with_schedule(make_workload(addresses), schedule, config)
        from_disk = replay_with_schedule(make_workload(addresses), loaded, config)
        assert direct.promotions == from_disk.promotions
        assert direct.total_cycles == from_disk.total_cycles
