"""Tests for the online simulation loop."""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy, KernelParams
from tests.conftest import make_workload

BASE = 0x5555_5540_0000


def hot_cold_addresses(hot_pages=4, spread_pages=64, repeats=200, seed=0):
    """Interleave a hot region's pages with a wide cold sweep.

    The hot region thrashes the tiny TLB (HUB-like); each cold page is
    touched once (cold-miss filtered).
    """
    rng = np.random.default_rng(seed)
    hot = BASE + (rng.integers(0, hot_pages, size=repeats) * 4096)
    cold = BASE + (2 << 21) + np.arange(repeats) % spread_pages * 4096
    out = np.empty(2 * repeats, dtype=np.uint64)
    out[0::2] = hot
    out[1::2] = cold
    return out


class TestBaselineRun:
    def test_accesses_accounted(self, config):
        workload = make_workload(hot_cold_addresses())
        result = Simulator(config, policy=HugePagePolicy.NONE).run([workload])
        assert result.accesses == 400
        assert result.walks > 0
        assert result.total_cycles > 0
        assert result.promotions == 0

    def test_deterministic(self, config):
        first = Simulator(config, policy=HugePagePolicy.NONE).run(
            [make_workload(hot_cold_addresses())]
        )
        second = Simulator(config, policy=HugePagePolicy.NONE).run(
            [make_workload(hot_cold_addresses())]
        )
        assert first.total_cycles == second.total_cycles
        assert first.walks == second.walks

    def test_empty_workload(self, config):
        workload = make_workload(np.empty(0, dtype=np.uint64))
        result = Simulator(config, policy=HugePagePolicy.NONE).run([workload])
        assert result.accesses == 0
        assert result.total_cycles == 0


class TestPCCRun:
    def test_promotions_happen_and_reduce_walks(self, config):
        addresses = hot_cold_addresses(repeats=2000)
        baseline = Simulator(config, policy=HugePagePolicy.NONE).run(
            [make_workload(addresses)]
        )
        pcc = Simulator(config, policy=HugePagePolicy.PCC).run(
            [make_workload(addresses)]
        )
        assert pcc.promotions > 0
        assert pcc.walks < baseline.walks

    def test_budget_zero_equals_baseline_walks(self, config):
        addresses = hot_cold_addresses(repeats=1000)
        params = KernelParams(promotion_budget_regions=0)
        limited = Simulator(
            config, policy=HugePagePolicy.PCC, params=params
        ).run([make_workload(addresses)])
        assert limited.promotions == 0

    def test_promotion_timeline_recorded(self, config):
        result = Simulator(config, policy=HugePagePolicy.PCC).run(
            [make_workload(hot_cold_addresses(repeats=2000))]
        )
        assert result.promotion_timeline
        assert result.huge_page_timeline
        assert sum(n for _, n in result.promotion_timeline) == result.promotions


class TestIdealRun:
    def test_ideal_promotes_at_fault_time(self, config):
        result = Simulator(config, policy=HugePagePolicy.IDEAL).run(
            [make_workload(hot_cold_addresses())]
        )
        assert sum(p.huge_pages for p in result.processes) > 0

    def test_ideal_minimizes_walks(self, config):
        addresses = hot_cold_addresses(repeats=2000)
        baseline = Simulator(config, policy=HugePagePolicy.NONE).run(
            [make_workload(addresses)]
        )
        ideal = Simulator(config, policy=HugePagePolicy.IDEAL).run(
            [make_workload(addresses)]
        )
        assert ideal.walks < baseline.walks / 2


class TestMultiThread:
    def _two_thread_workload(self):
        from repro.engine.system import ProcessWorkload, partition_trace
        from repro.trace.events import Trace
        from repro.vm.layout import AddressSpaceLayout

        addresses = hot_cold_addresses(repeats=1000)
        layout = AddressSpaceLayout(heap_base=BASE)
        layout.allocate("data", 8 << 21)
        trace = Trace("mt", addresses, footprint_bytes=8 << 21)
        parts = partition_trace(trace, 2, layout)
        return ProcessWorkload.multi_thread(parts, layout, name="mt")

    def test_threads_pin_to_cores(self):
        config = tiny_config(cores=2)
        workload = self._two_thread_workload()
        result = Simulator(config, policy=HugePagePolicy.NONE).run([workload])
        assert len(result.per_core) == 2
        assert all(b.total > 0 for b in result.per_core)

    def test_more_threads_than_cores_rejected_when_pinned(self):
        config = tiny_config(cores=1)
        workload = self._two_thread_workload()
        workload.threads[1].core = 5
        with pytest.raises(ValueError, match="core"):
            Simulator(config, policy=HugePagePolicy.NONE).run([workload])

    def test_serialization_charge_applied(self):
        config = tiny_config(cores=2)
        plain = Simulator(config, policy=HugePagePolicy.NONE).run(
            [self._two_thread_workload()]
        )
        serialized = Simulator(
            config,
            policy=HugePagePolicy.NONE,
            serialization_cycles_per_access=1.0,
        ).run([self._two_thread_workload()])
        assert serialized.total_cycles > plain.total_cycles


class TestMultiProcess:
    def test_two_processes_isolated_address_spaces(self):
        config = tiny_config(cores=2)
        a = make_workload(hot_cold_addresses(repeats=500), name="a")
        b = make_workload(hot_cold_addresses(repeats=500), name="b")
        b.pid = 2
        result = Simulator(config, policy=HugePagePolicy.NONE).run([a, b])
        assert {p.name for p in result.processes} == {"a", "b"}
        assert result.accesses == 2000

    def test_huge_page_timeline_per_pid(self):
        config = tiny_config(cores=2)
        a = make_workload(hot_cold_addresses(repeats=1500), name="a")
        b = make_workload(hot_cold_addresses(repeats=1500), name="b")
        b.pid = 2
        result = Simulator(config, policy=HugePagePolicy.PCC).run([a, b])
        assert result.huge_page_timeline
        final = result.huge_page_timeline[-1]
        assert set(final) == {1, 2}


class TestShootdownIntegration:
    def test_promoted_regions_invalidated_from_pcc(self, config):
        simulator = Simulator(config, policy=HugePagePolicy.PCC)
        result = simulator.run([make_workload(hot_cold_addresses(repeats=2000))])
        # every promoted region must be out of all PCC structures
        table = simulator.kernel.processes[1].page_table
        promoted = set(table.promoted_regions())
        assert promoted  # sanity
        assert result.promotions == len(promoted)
