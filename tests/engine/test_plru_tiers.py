"""Engine tiers under the tree-PLRU knob.

The adaptive engine's upper tiers encode LRU-specific shortcuts (dict
reinsert as recency, the columnar epoch classifier's exact-LRU
algebra). Under ``tlb_replacement="plru"`` each tier either runs a
policy-correct variant (scalar/fast/batch) or transparently falls back
a tier (columnar -> quantum), and the observable simulation must stay
bit-identical across all four — the same guarantee the differential
oracle enforces for LRU. The fallback is counted so operators can see
a plru run quietly degrading columnar epochs in ``repro inspect``.
"""

from repro.obs import inspect as inspect_module
from repro.validation.generators import generate_case
from repro.validation.oracle import TIERS, fingerprint, run_case

#: wide geometry: off the all-2-way tiny default where PLRU == LRU
WIDE = {"l1_base": [8, 4], "l2": [16, 8]}


def _case(replacement):
    return generate_case(
        5,
        min_threads=2,
        tlb_replacement=replacement if replacement != "lru" else None,
        tlb_geometry=WIDE,
    )


def test_all_four_tiers_are_bit_identical_under_plru():
    case = _case("plru")
    prints = {}
    for tier in TIERS:
        _, result = run_case(case, tier=tier)
        prints[tier] = fingerprint(result)
    assert prints["fast"] == prints["scalar"]
    assert prints["batch"] == prints["scalar"]
    assert prints["columnar"] == prints["scalar"]


def test_plru_and_lru_actually_diverge_on_wide_sets():
    """The knob must be live: identical runs under the two policies may
    not produce identical translation behaviour on 4/8-way sets (if
    they did, the ablation axis would be measuring nothing)."""
    _, lru = run_case(_case("lru"), tier="scalar")
    _, plru = run_case(_case("plru"), tier="scalar")
    assert fingerprint(lru) != fingerprint(plru)


def test_columnar_fallback_is_counted_under_plru():
    simulator, _ = run_case(_case("plru"), tier="columnar")
    metrics = {}
    for index, pipeline in enumerate(simulator.machine.pipelines):
        metrics.update(pipeline.as_metrics(f"core{index}.fastpath"))
    fallbacks = sum(
        value
        for name, value in metrics.items()
        if name.endswith(".columnar_plru_fallbacks")
    )
    assert fallbacks > 0


def test_columnar_fallback_stays_zero_under_lru():
    simulator, _ = run_case(_case("lru"), tier="columnar")
    for pipeline in simulator.machine.pipelines:
        assert pipeline.columnar_plru_fallbacks == 0


def test_inspect_renders_the_fallback_counter():
    """The counter rides the generic ``core<N>.fastpath.*`` export, so
    ``repro inspect`` must fold and print it with the other tier
    instrumentation."""
    doc = {
        "schema": "repro.metrics/v1",
        "run_id": "t",
        "runs": [
            {
                "meta": {},
                "counters": {
                    "core0.fastpath.columnar_plru_fallbacks": 3,
                    "core1.fastpath.columnar_plru_fallbacks": 2,
                },
            }
        ],
    }
    summary = inspect_module.summarize_metrics(doc)
    assert summary["engine_tiers"]["columnar_plru_fallbacks"] == 5
    rendered = inspect_module.render(
        inspect_module.inspect_document(doc, top=5)
    )
    assert "columnar_plru_fallbacks" in rendered
