"""Additional two-step methodology coverage: schedule time gating."""

import numpy as np
import pytest

from repro.core.dump import CandidateRecord
from repro.engine.offline import (
    PromotionSchedule,
    ScheduledPromotion,
    replay_with_schedule,
)
from tests.conftest import make_workload
from tests.engine.test_simulation import hot_cold_addresses

BASE_REGION = 0x5555_5540_0000 >> 21


def scheduled(tag, at, freq=10):
    return ScheduledPromotion(
        at_access=at,
        record=CandidateRecord(pid=1, core=0, tag=tag, frequency=freq),
    )


class TestTimeGating:
    def test_future_candidates_not_promoted_early(self, config):
        """A candidate scheduled beyond the trace end never applies."""
        addresses = hot_cold_addresses(repeats=1000)  # 2000 accesses
        schedule = PromotionSchedule(
            entries=[scheduled(BASE_REGION, at=10_000_000)]
        )
        result = replay_with_schedule(
            make_workload(addresses), schedule, config
        )
        assert result.promotions == 0

    def test_candidate_applies_after_its_timestamp(self, config):
        addresses = hot_cold_addresses(repeats=2000)
        schedule = PromotionSchedule(
            entries=[scheduled(BASE_REGION, at=100)]
        )
        result = replay_with_schedule(
            make_workload(addresses), schedule, config
        )
        assert result.promotions == 1
        # the promotion fires at the first tick past the timestamp
        assert result.promotion_timeline[0][1] == 1

    def test_entries_applied_in_time_order(self, config):
        addresses = hot_cold_addresses(repeats=3000)
        total = len(addresses)
        cold_region = (0x5555_5540_0000 + (2 << 21)) >> 21
        schedule = PromotionSchedule(
            entries=[
                scheduled(cold_region, at=total - 100, freq=1),
                scheduled(BASE_REGION, at=100, freq=50),
            ]
        )
        result = replay_with_schedule(
            make_workload(addresses), schedule, config
        )
        assert result.promotions == 2
        ticks_with_promotions = [
            at for at, count in result.promotion_timeline if count
        ]
        assert len(ticks_with_promotions) >= 2

    def test_duplicate_candidates_promote_once(self, config):
        addresses = hot_cold_addresses(repeats=2000)
        schedule = PromotionSchedule(
            entries=[
                scheduled(BASE_REGION, at=100),
                scheduled(BASE_REGION, at=500),
                scheduled(BASE_REGION, at=900),
            ]
        )
        result = replay_with_schedule(
            make_workload(addresses), schedule, config
        )
        assert result.promotions == 1
