"""Core-level tests for 1GB-path behaviour."""

import pytest

from repro.config import PCCConfig, tiny_config
from repro.engine.cpu import Core
from repro.vm.address import GIGA_PAGE_SIZE, HUGE_PAGE_SIZE
from repro.vm.pagetable import PageTable


@pytest.fixture
def giga_core():
    config = tiny_config().with_(
        pcc=PCCConfig(entries=4, giga_entries=2, giga_enabled=True)
    )
    return Core(config)


class TestGigaTracking:
    def test_walks_from_different_2mb_regions_share_1gb_entry(self, giga_core):
        table = PageTable()
        base = GIGA_PAGE_SIZE  # giga region 1
        table.map_base(base, frame=0)
        table.map_base(base + HUGE_PAGE_SIZE, frame=1)
        giga_core.access_page(base >> 12, table)
        giga_core.access_page((base + HUGE_PAGE_SIZE) >> 12, table)
        assert 1 in giga_core.pcc_1gb
        # the two walks hit different 2MB prefixes
        assert len(giga_core.pcc) <= 2

    def test_giga_mapping_serves_whole_gigabyte(self, giga_core):
        table = PageTable()
        base = 2 * GIGA_PAGE_SIZE
        table.map_base(base, frame=0)
        table.promote_giga(2, frame=0)
        giga_core.access_page(base >> 12, table)
        walks_before = giga_core.stats.walks
        # an access 700MB away hits the same 1GB TLB entry
        far = base + 700 * (1 << 20)
        cycles = giga_core.access_page(far >> 12, table)
        assert giga_core.stats.walks == walks_before
        assert cycles == 0

    def test_promoted_giga_walks_flagged(self, giga_core):
        table = PageTable()
        base = 3 * GIGA_PAGE_SIZE
        table.map_base(base, frame=0)
        table.promote_giga(3, frame=0)
        giga_core.access_page(base >> 12, table)
        # force the entry out of the tiny giga TLB to walk again
        giga_core.tlb.flush()
        giga_core.access_page((base + HUGE_PAGE_SIZE) >> 12, table)
        entry = next(iter(giga_core.pcc_1gb.ranked()), None)
        assert entry is not None
        assert entry.promoted_leaf

    def test_giga_pcc_capacity_respected(self, giga_core):
        table = PageTable()
        for giga in range(4, 10):
            base = giga * GIGA_PAGE_SIZE
            table.map_base(base, frame=0)
            giga_core.access_page(base >> 12, table)
            giga_core.access_page(base >> 12, table)
        assert len(giga_core.pcc_1gb) <= 2
