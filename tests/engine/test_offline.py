"""Tests for the two-step (record / replay) methodology."""

import numpy as np

from repro.engine.offline import (
    PromotionSchedule,
    record_candidates,
    replay_with_schedule,
)
from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy
from tests.conftest import make_workload
from tests.engine.test_simulation import hot_cold_addresses


class TestRecording:
    def test_schedule_contains_hot_regions(self, config):
        workload = make_workload(hot_cold_addresses(repeats=2000))
        schedule = record_candidates(workload, config)
        assert len(schedule) > 0
        hot_region = 0x5555_5540_0000 >> 21
        assert hot_region in schedule.regions()

    def test_schedule_times_monotonic_per_flush(self, config):
        workload = make_workload(hot_cold_addresses(repeats=2000))
        schedule = record_candidates(workload, config)
        times = [e.at_access for e in schedule.entries]
        assert times == sorted(times)

    def test_regions_first_seen_order_unique(self):
        schedule = PromotionSchedule()
        assert schedule.regions() == []


class TestReplay:
    def test_replay_promotes_scheduled_regions(self, config):
        addresses = hot_cold_addresses(repeats=2000)
        workload = make_workload(addresses)
        schedule = record_candidates(workload, config)
        result = replay_with_schedule(
            make_workload(addresses), schedule, config
        )
        assert result.promotions > 0

    def test_replay_agrees_with_online_engine(self, config):
        """The paper's two-step pipeline and our online loop promote
        overlapping region sets on a deterministic trace."""
        addresses = hot_cold_addresses(repeats=3000)
        schedule = record_candidates(make_workload(addresses), config)

        online_sim = Simulator(config, policy=HugePagePolicy.PCC)
        online = online_sim.run([make_workload(addresses)])
        online_regions = set(
            online_sim.kernel.processes[1].page_table.promoted_regions()
        )
        replayed = replay_with_schedule(make_workload(addresses), schedule, config)
        assert replayed.promotions > 0
        scheduled = set(schedule.regions())
        # every online promotion came from a region the offline step found
        assert online_regions <= scheduled

    def test_replay_respects_budget(self, config):
        addresses = hot_cold_addresses(repeats=2000)
        schedule = record_candidates(make_workload(addresses), config)
        result = replay_with_schedule(
            make_workload(addresses), schedule, config, budget_regions=1
        )
        assert result.promotions <= 1
