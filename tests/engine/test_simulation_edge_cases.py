"""Edge-case tests for the simulation loop's interval machinery."""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy
from tests.conftest import make_workload
from tests.engine.test_simulation import hot_cold_addresses


class TestIntervalBoundaries:
    def test_trace_shorter_than_interval_still_gets_final_tick(self):
        """The trailing promotion tick catches short runs."""
        from dataclasses import replace

        base = tiny_config()
        config = base.with_(
            os=replace(base.os, promote_every_accesses=1_000_000)
        )
        workload = make_workload(hot_cold_addresses(repeats=1500))
        simulator = Simulator(config, policy=HugePagePolicy.PCC)
        result = simulator.run([workload])
        assert result.promotions > 0  # from the final tick only
        assert len(result.promotion_timeline) == 1

    def test_interval_count_tracks_trace_length(self, config):
        short = Simulator(config, policy=HugePagePolicy.PCC).run(
            [make_workload(hot_cold_addresses(repeats=500))]
        )
        long = Simulator(config, policy=HugePagePolicy.PCC).run(
            [make_workload(hot_cold_addresses(repeats=5000))]
        )
        assert len(long.promotion_timeline) > len(short.promotion_timeline)

    def test_timeline_access_counts_monotonic(self, config):
        result = Simulator(config, policy=HugePagePolicy.PCC).run(
            [make_workload(hot_cold_addresses(repeats=3000))]
        )
        ticks = [at for at, _ in result.promotion_timeline]
        assert ticks == sorted(ticks)
        assert ticks[-1] <= result.accesses


class TestQuantumBehaviour:
    def test_quantum_size_does_not_change_results_single_thread(self):
        """For one thread, quantum slicing is invisible."""
        addresses = hot_cold_addresses(repeats=2000)
        results = []
        for quantum in (64, 4096):
            simulator = Simulator(
                tiny_config(),
                policy=HugePagePolicy.NONE,
                thread_quantum=quantum,
            )
            results.append(simulator.run([make_workload(addresses)]))
        assert results[0].walks == results[1].walks
        assert results[0].total_cycles == results[1].total_cycles

    def test_repeat_runs_do_not_leak_state(self, config):
        """A Simulator instance is single-use per run() by design; two
        fresh simulators give identical results."""
        addresses = hot_cold_addresses(repeats=1000)
        first = Simulator(config, policy=HugePagePolicy.PCC).run(
            [make_workload(addresses)]
        )
        second = Simulator(config, policy=HugePagePolicy.PCC).run(
            [make_workload(addresses)]
        )
        assert first.total_cycles == second.total_cycles
        assert first.promotions == second.promotions


class TestWalkAccounting:
    def test_walks_equal_l2_misses(self, config):
        workload = make_workload(hot_cold_addresses(repeats=1500))
        simulator = Simulator(config, policy=HugePagePolicy.NONE)
        result = simulator.run([workload])
        # every whole-hierarchy miss triggers exactly one walk
        assert result.walks > 0
        assert result.accesses == result.walks + result.l1_hits + result.l2_hits

    def test_miss_rate_bounded(self, config):
        workload = make_workload(hot_cold_addresses(repeats=1500))
        result = Simulator(config, policy=HugePagePolicy.NONE).run([workload])
        assert 0.0 < result.walk_rate < 1.0
