"""Unit tests for the per-core pipeline (TLBs + walker + PCC)."""

import pytest

from repro.config import tiny_config
from repro.engine.cpu import Core
from repro.vm.address import HUGE_PAGE_SIZE
from repro.vm.pagetable import PageTable

BASE = 0x5555_5540_0000
VPN = BASE >> 12
REGION = BASE >> 21


@pytest.fixture
def table():
    table = PageTable()
    for page in range(8):
        table.map_base(BASE + page * 4096, frame=page)
    return table


@pytest.fixture
def core():
    return Core(tiny_config())


class TestAccessPath:
    def test_first_access_walks(self, core, table):
        cycles = core.access_page(VPN, table)
        assert core.stats.walks == 1
        assert cycles > 0

    def test_second_access_hits_l1_free(self, core, table):
        core.access_page(VPN, table)
        cycles = core.access_page(VPN, table)
        assert cycles == 0  # L1 hit costs nothing extra
        assert core.stats.l1_hits == 1

    def test_repeat_counts_as_l1_hits(self, core, table):
        core.access_page(VPN, table, repeat=10)
        assert core.stats.accesses == 10
        assert core.stats.walks == 1
        assert core.stats.l1_hits == 9

    def test_walk_rate(self, core, table):
        core.access_page(VPN, table, repeat=4)
        assert core.stats.walk_rate == 0.25


class TestPCCAdmission:
    def test_cold_region_not_admitted(self, core, table):
        core.access_page(VPN, table)
        assert len(core.pcc) == 0

    def test_warm_region_admitted_after_tlb_pressure(self, core, table):
        core.access_page(VPN, table)
        # 2nd walk to the same region (different page): PMD bit set
        core.access_page(VPN + 1, table)
        assert REGION in core.pcc

    def test_pcc_frequency_grows_with_walks(self, core, table):
        for page in range(4):
            core.access_page(VPN + page, table)
        assert core.pcc.frequency_of(REGION) == 2  # walks 2,3,4 admitted; 1st inserts at 0


class TestShootdown:
    def test_shootdown_invalidates_tlb_and_pcc(self, core, table):
        core.access_page(VPN, table)
        core.access_page(VPN + 1, table)
        assert REGION in core.pcc
        core.shootdown(REGION)
        assert REGION not in core.pcc
        # next access walks again
        walks_before = core.stats.walks
        core.access_page(VPN, table)
        assert core.stats.walks == walks_before + 1

    def test_shootdown_of_absent_region_harmless(self, core):
        core.shootdown(12345)


class TestPromotedMapping:
    def test_huge_mapping_served_by_huge_tlb(self, core, table):
        table.promote(REGION, frame=9)
        core.access_page(VPN, table)
        cycles = core.access_page(VPN + 1, table)  # same 2MB entry
        assert cycles == 0
        assert core.stats.walks == 1

    def test_dump_pcc_ranked(self, core, table):
        for page in range(4):
            core.access_page(VPN + page, table)
        entries = core.dump_pcc()
        assert entries[0].tag == REGION
        assert len(core.pcc) == 1  # dump does not clear


class TestGigaPCC:
    def test_disabled_by_default(self, core):
        assert core.pcc_1gb is None
        assert core.dump_pcc_1gb() == []

    def test_enabled_tracks_1gb_regions(self, table):
        from repro.config import PCCConfig

        config = tiny_config().with_(
            pcc=PCCConfig(entries=4, giga_entries=2, giga_enabled=True)
        )
        core = Core(config)
        core.access_page(VPN, table)
        core.access_page(VPN + 1, table)
        assert core.pcc_1gb is not None
        assert (BASE >> 30) in core.pcc_1gb
