"""Tests for workload binding structures."""

import numpy as np
import pytest

from repro.engine.system import ProcessWorkload, ThreadWorkload, partition_trace
from repro.trace.events import Trace
from repro.vm.layout import AddressSpaceLayout


def make_trace(count=100):
    return Trace(
        "t",
        np.arange(count, dtype=np.uint64) * 4096,
        footprint_bytes=count * 4096,
    )


@pytest.fixture
def layout():
    layout = AddressSpaceLayout()
    layout.allocate("data", 8 << 21)
    return layout


class TestThreadWorkload:
    def test_from_trace_compresses(self):
        thread = ThreadWorkload.from_trace(make_trace())
        assert thread.trace.total_accesses == 100
        assert thread.core == -1


class TestProcessWorkload:
    def test_single_thread(self, layout):
        process = ProcessWorkload.single_thread(make_trace(), layout)
        assert len(process.threads) == 1
        assert process.total_accesses == 100
        assert process.footprint_bytes == 8 << 21

    def test_multi_thread(self, layout):
        traces = [make_trace(10), make_trace(20)]
        process = ProcessWorkload.multi_thread(traces, layout, name="mt")
        assert process.total_accesses == 30
        assert process.name == "mt"

    def test_footprint_huge_regions(self, layout):
        process = ProcessWorkload.single_thread(make_trace(), layout)
        assert process.footprint_huge_regions() == 8


class TestPartitionTrace:
    def test_partitions_cover_everything(self, layout):
        trace = make_trace(100)
        parts = partition_trace(trace, 3, layout)
        assert len(parts) == 3
        total = sum(len(p) for p in parts)
        assert total == 100
        recombined = np.concatenate([p.addresses for p in parts])
        assert np.array_equal(recombined, trace.addresses)

    def test_part_names_distinct(self, layout):
        parts = partition_trace(make_trace(10), 2, layout)
        assert parts[0].name != parts[1].name

    def test_invalid_parts(self, layout):
        with pytest.raises(ValueError):
            partition_trace(make_trace(10), 0, layout)


class TestPartitionEdgeCases:
    def test_more_parts_than_elements(self, layout):
        trace = make_trace(2)
        parts = partition_trace(trace, 5, layout)
        assert len(parts) == 5
        assert sum(len(p) for p in parts) == 2

    def test_empty_thread_parts_simulate_cleanly(self, layout):
        from repro.config import tiny_config
        from repro.engine.simulation import Simulator
        from repro.os.kernel import HugePagePolicy

        trace = make_trace(3)
        parts = partition_trace(trace, 4, layout)  # one part empty
        workload = ProcessWorkload.multi_thread(parts, layout, "sparse")
        result = Simulator(
            tiny_config(cores=4), policy=HugePagePolicy.NONE
        ).run([workload])
        assert result.accesses == 3
