"""Cross-workload characterization tests.

These encode Table 1 / Fig. 1's relationships between the eight
applications: relative footprints, trace volumes, and page-level
locality, so a regression in any workload model's calibration fails
loudly rather than silently skewing every downstream figure.
"""

import numpy as np
import pytest

from repro.analysis import tracestats
from repro.trace.events import Trace
from repro.workloads.registry import build_workload, workload_names

SCALE = 11
ACCESSES = 40_000


@pytest.fixture(scope="module")
def workloads():
    return {
        name: build_workload(name, scale=SCALE, accesses=ACCESSES)
        for name in workload_names()
    }


def raw_trace(workload) -> Trace:
    compressed = workload.threads[0].trace
    addresses = np.repeat(
        compressed.vpns.astype(np.uint64) << np.uint64(12), compressed.counts
    )
    return Trace(workload.name, addresses, workload.footprint_bytes)


class TestFootprints:
    def test_sssp_about_twice_bfs(self, workloads):
        ratio = (
            workloads["SSSP"].footprint_bytes
            / workloads["BFS"].footprint_bytes
        )
        assert 1.5 < ratio < 2.5  # Table 1: 19GB vs 10GB

    def test_all_footprints_positive_and_region_backed(self, workloads):
        for name, workload in workloads.items():
            assert workload.footprint_bytes > 1 << 20, name
            assert workload.footprint_huge_regions() >= 2, name


class TestLocality:
    def test_graph_apps_have_hot_region_concentration(self, workloads):
        """Power-law gathers concentrate accesses in few regions."""
        for name in ("BFS", "PR"):
            stats = tracestats.analyze(raw_trace(workloads[name]))
            assert stats.top_decile_region_share > 0.3, name

    def test_streaming_apps_compress_far_better_than_graph(self, workloads):
        dedup = tracestats.analyze(raw_trace(workloads["dedup"]))
        bfs = tracestats.analyze(raw_trace(workloads["BFS"]))
        assert dedup.compression_ratio > 5 * bfs.compression_ratio

    def test_every_trace_stays_in_its_layout(self, workloads):
        for name, workload in workloads.items():
            trace = raw_trace(workload)
            vmas = list(workload.layout)
            lo = min(v.start for v in vmas)
            hi = max(v.end for v in vmas)
            assert int(trace.addresses.min()) >= lo, name
            assert int(trace.addresses.max()) < hi, name


class TestVolumes:
    def test_proxies_hit_requested_volume(self, workloads):
        for name in ("canneal", "omnetpp", "xalancbmk", "dedup", "mcf"):
            total = workloads[name].total_accesses
            assert total == pytest.approx(ACCESSES, rel=0.15), name

    def test_pagerank_touches_each_edge_per_iteration(self, workloads):
        from repro.workloads.registry import build_graph

        graph = build_graph("kronecker", scale=SCALE)
        pr = workloads["PR"]
        # 2 iterations x (edges streamed + edges gathered) dominate
        assert pr.total_accesses > 2 * 2 * graph.edges * 0.9
