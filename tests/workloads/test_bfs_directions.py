"""Tests for direction-optimizing BFS."""

import numpy as np
import pytest

from repro.workloads.bfs import bfs_trace
from repro.workloads.graph import kronecker


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=10, degree=8, seed=3)


class TestDirectionOptimizing:
    def test_produces_valid_trace(self, graph):
        trace, glayout = bfs_trace(graph, direction_optimizing=True)
        assert len(trace) > 0
        vmas = list(glayout.layout)
        lo = min(v.start for v in vmas)
        hi = max(v.end for v in vmas)
        assert int(trace.addresses.min()) >= lo
        assert int(trace.addresses.max()) < hi
        assert trace.metadata["direction_optimizing"] is True

    def test_deterministic(self, graph):
        a, _ = bfs_trace(graph, direction_optimizing=True)
        b, _ = bfs_trace(graph, direction_optimizing=True)
        assert np.array_equal(a.addresses, b.addresses)

    def test_differs_from_top_down(self, graph):
        plain, _ = bfs_trace(graph)
        optimized, _ = bfs_trace(graph, direction_optimizing=True)
        assert not np.array_equal(plain.addresses, optimized.addresses)

    def test_bottom_up_improves_page_locality(self, graph):
        """The bottom-up sweep is sequential over the property array,
        so the DO trace compresses better at page granularity."""
        plain, _ = bfs_trace(graph)
        optimized, _ = bfs_trace(graph, direction_optimizing=True)
        assert (
            optimized.compress().compression_ratio
            > plain.compress().compression_ratio
        )

    def test_threshold_one_never_switches(self, graph):
        """A threshold above any frontier share degenerates to top-down."""
        plain, _ = bfs_trace(graph)
        never, _ = bfs_trace(
            graph, direction_optimizing=True, bottom_up_threshold=1.1
        )
        assert np.array_equal(plain.addresses, never.addresses)

    def test_probe_cap_bounds_edge_reads(self, graph):
        small, _ = bfs_trace(
            graph, direction_optimizing=True, bottom_up_probe_cap=1
        )
        large, _ = bfs_trace(
            graph, direction_optimizing=True, bottom_up_probe_cap=8
        )
        assert len(small) < len(large)
