"""Additional synthesis-generator coverage via TLB-level behaviour."""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy
from repro.trace import synthesis
from repro.vm.layout import VMA
from tests.conftest import make_workload

REGION = VMA("r", 0x7000_0000_0000, 32 << 20)


class TestBehaviouralContrast:
    """The generators must produce the TLB behaviour their names imply,
    measured through the actual simulator rather than assumed."""

    def simulate(self, addresses):
        workload = make_workload(np.asarray(addresses, dtype=np.uint64))
        result = Simulator(tiny_config(), policy=HugePagePolicy.NONE).run(
            [workload]
        )
        return result.walk_rate

    def test_sequential_is_tlb_friendly(self):
        walk = self.simulate(synthesis.sequential(REGION, 20_000, stride=64))
        assert walk < 0.05

    def test_uniform_random_is_tlb_hostile(self):
        rng = np.random.default_rng(1)
        walk = self.simulate(
            synthesis.uniform_random(REGION, 20_000, rng, granularity=4096)
        )
        assert walk > 0.5

    def test_zipf_between_extremes(self):
        rng = np.random.default_rng(1)
        walk = self.simulate(
            synthesis.zipf_random(
                REGION, 20_000, rng, exponent=1.2, granularity=4096
            )
        )
        sequential = self.simulate(
            synthesis.sequential(REGION, 20_000, stride=64)
        )
        uniform = self.simulate(
            synthesis.uniform_random(
                REGION, 20_000, np.random.default_rng(1), granularity=4096
            )
        )
        assert sequential < walk < uniform

    def test_pointer_chase_is_worst_case(self):
        rng = np.random.default_rng(1)
        walk = self.simulate(
            synthesis.pointer_chase(REGION, 20_000, rng, node_bytes=4096)
        )
        assert walk > 0.9
