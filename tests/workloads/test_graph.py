"""Tests for the graph substrate."""

import numpy as np
import pytest

from repro.workloads.graph import (
    CSRGraph,
    GraphSpec,
    degree_based_grouping,
    kronecker,
    social,
    web,
)


class TestCSRValidation:
    def test_valid_graph(self):
        graph = CSRGraph(
            offsets=np.array([0, 2, 3]),
            neighbors=np.array([1, 0, 0]),
        )
        assert graph.nodes == 2
        assert graph.edges == 3
        graph.validate()

    def test_bad_offsets_start(self):
        with pytest.raises(ValueError):
            CSRGraph(offsets=np.array([1, 2]), neighbors=np.array([0, 0]))

    def test_bad_offsets_end(self):
        with pytest.raises(ValueError):
            CSRGraph(offsets=np.array([0, 5]), neighbors=np.array([0]))

    def test_decreasing_offsets(self):
        with pytest.raises(ValueError):
            CSRGraph(offsets=np.array([0, 2, 1, 3]), neighbors=np.array([0] * 3))

    def test_out_of_range_neighbors(self):
        graph = CSRGraph(offsets=np.array([0, 1]), neighbors=np.array([5]))
        with pytest.raises(ValueError, match="out of range"):
            graph.validate()

    def test_degrees_and_neighbors_of(self):
        graph = CSRGraph(
            offsets=np.array([0, 2, 2, 3]),
            neighbors=np.array([1, 2, 0]),
        )
        assert graph.degrees().tolist() == [2, 0, 1]
        assert graph.neighbors_of(0).tolist() == [1, 2]
        assert graph.neighbors_of(1).tolist() == []


class TestGenerators:
    @pytest.mark.parametrize("generator", [kronecker, social, web])
    def test_structural_validity(self, generator):
        graph = generator(scale=8)
        graph.validate()
        assert graph.nodes == 256
        assert graph.edges > graph.nodes  # average degree > 1 survives dedup

    @pytest.mark.parametrize("generator", [kronecker, social, web])
    def test_deterministic(self, generator):
        a = generator(scale=7)
        b = generator(scale=7)
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.neighbors, b.neighbors)

    def test_different_seeds_differ(self):
        a = kronecker(scale=8, seed=1)
        b = kronecker(scale=8, seed=2)
        assert not np.array_equal(a.neighbors, b.neighbors)

    def test_no_self_loops(self):
        graph = kronecker(scale=8)
        src = np.repeat(np.arange(graph.nodes), graph.degrees())
        assert not np.any(src == graph.neighbors)

    def test_no_duplicate_edges(self):
        graph = kronecker(scale=8)
        src = np.repeat(np.arange(graph.nodes, dtype=np.int64), graph.degrees())
        keys = src * graph.nodes + graph.neighbors
        assert np.unique(keys).size == keys.size

    def test_power_law_degree_skew(self):
        """R-MAT graphs have hub vertices: the top 1% of vertices hold a
        disproportionate share of edges."""
        graph = kronecker(scale=12, degree=16)
        degrees = np.sort(graph.degrees())[::-1]
        top = degrees[: max(1, graph.nodes // 100)].sum()
        assert top / graph.edges > 0.05

    def test_spec_properties(self):
        spec = GraphSpec("x", scale=10, degree=4)
        assert spec.nodes == 1024
        assert spec.edges == 4096

    def test_invalid_rmat_probabilities(self):
        spec = GraphSpec("bad", scale=4, degree=2, rmat=(0.5, 0.3, 0.2))
        from repro.workloads.graph import _rmat_edges

        with pytest.raises(ValueError):
            _rmat_edges(spec, np.random.default_rng(0))


class TestDBG:
    def test_preserves_structure(self):
        graph = kronecker(scale=9)
        sorted_graph = degree_based_grouping(graph)
        sorted_graph.validate()
        assert sorted_graph.nodes == graph.nodes
        assert sorted_graph.edges == graph.edges
        # degree multiset is preserved by renumbering
        assert sorted(graph.degrees().tolist()) == sorted(
            sorted_graph.degrees().tolist()
        )

    def test_orders_by_degree_class_descending(self):
        graph = kronecker(scale=9)
        sorted_graph = degree_based_grouping(graph)
        degrees = sorted_graph.degrees()
        classes = np.zeros(sorted_graph.nodes, dtype=np.int64)
        nonzero = degrees > 0
        classes[nonzero] = np.floor(np.log2(degrees[nonzero])).astype(np.int64) + 1
        assert np.all(np.diff(classes) <= 0)

    def test_adjacency_preserved_under_renaming(self):
        graph = kronecker(scale=7)
        sorted_graph = degree_based_grouping(graph)
        # edge count per (degree-class of src, degree-class of dst) should
        # be identical — cheap isomorphism sanity check
        def class_histogram(g):
            degrees = g.degrees()
            classes = np.zeros(g.nodes, dtype=np.int64)
            nz = degrees > 0
            classes[nz] = np.floor(np.log2(degrees[nz])).astype(np.int64) + 1
            src = np.repeat(classes, degrees)
            dst = classes[g.neighbors]
            hist = {}
            for s, d in zip(src.tolist(), dst.tolist()):
                hist[(s, d)] = hist.get((s, d), 0) + 1
            return hist

        assert class_histogram(graph) == class_histogram(sorted_graph)
