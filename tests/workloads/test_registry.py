"""Tests for the workload registry."""

import pytest

from repro.workloads.registry import (
    SPECS,
    build_graph,
    build_workload,
    graph_workload_names,
    workload_names,
)


class TestNames:
    def test_eight_applications(self):
        names = workload_names()
        assert len(names) == 8
        assert names[:3] == ["BFS", "SSSP", "PR"]

    def test_graph_names(self):
        assert graph_workload_names() == ["BFS", "SSSP", "PR"]

    def test_specs_cover_all(self):
        assert set(SPECS) == set(workload_names())

    def test_sensitivity_labels(self):
        assert SPECS["BFS"].tlb_sensitivity == "high"
        assert SPECS["mcf"].tlb_sensitivity == "low"


class TestBuildGraph:
    def test_datasets(self):
        for dataset in ("kronecker", "social", "web"):
            graph = build_graph(dataset, scale=8)
            graph.validate()

    def test_dbg_variant(self):
        plain = build_graph("kronecker", scale=8)
        sorted_graph = build_graph("kronecker", scale=8, sorted_dbg=True)
        assert sorted_graph.name.endswith("-dbg")
        assert sorted_graph.edges == plain.edges

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            build_graph("facebook")


class TestBuildWorkload:
    @pytest.mark.parametrize("name", ["BFS", "SSSP", "PR"])
    def test_graph_workloads(self, name):
        workload = build_workload(name, scale=8)
        assert workload.total_accesses > 0

    def test_proxy_workload(self):
        workload = build_workload("mcf", accesses=10_000)
        assert workload.total_accesses >= 9_000

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            build_workload("redis")


class TestExtendedWorkloads:
    def test_phased_via_registry(self):
        workload = build_workload("phased", accesses=10_000)
        assert workload.total_accesses == 10_000
        assert "arena_a" in workload.layout

    def test_giant_span_via_registry(self):
        workload = build_workload("giant-span", accesses=6_000)
        assert workload.footprint_bytes >= 2 << 30

    def test_unknown_error_lists_extended_names(self):
        with pytest.raises(KeyError, match="phased"):
            build_workload("redis")
