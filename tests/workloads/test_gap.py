"""Tests for the GAP-style graph workload traces."""

import numpy as np
import pytest

from repro.workloads import gapbase
from repro.workloads.bfs import bfs_trace, bfs_workload
from repro.workloads.graph import kronecker
from repro.workloads.pagerank import pagerank_trace
from repro.workloads.sssp import sssp_trace


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=9, degree=8, seed=3)


def addresses_within_layout(trace, glayout) -> bool:
    addresses = trace.addresses
    vmas = list(glayout.layout)
    lo = min(v.start for v in vmas)
    hi = max(v.end for v in vmas)
    return int(addresses.min()) >= lo and int(addresses.max()) < hi


class TestPlacement:
    def test_place_graph_vmas(self, graph):
        glayout = gapbase.place_graph(graph, properties=("p1", "p2"))
        names = {vma.name for vma in glayout.layout}
        assert names == {"offsets", "neighbors", "prop.p1", "prop.p2"}

    def test_address_helpers(self, graph):
        glayout = gapbase.place_graph(graph, properties=("p",), prop_stride=64)
        vertices = np.array([0, 1, 5])
        offsets = glayout.offsets_addr(vertices)
        assert offsets.tolist() == [
            glayout.offsets_base,
            glayout.offsets_base + 8,
            glayout.offsets_base + 40,
        ]
        props = glayout.prop_addr("p", vertices)
        assert (props[1] - props[0]) == 64

    def test_extra_vmas(self, graph):
        glayout = gapbase.place_graph(
            graph, properties=(), extra={"weights": 1024}
        )
        assert "weights" in glayout.layout


class TestExpandEdges:
    def test_expands_frontier_edges(self, graph):
        frontier = np.array([0, 1], dtype=np.int64)
        edge_indices, targets = gapbase.expand_edges(graph, frontier)
        expected = int(graph.degrees()[0] + graph.degrees()[1])
        assert edge_indices.size == expected
        assert np.array_equal(graph.neighbors[edge_indices], targets)

    def test_empty_frontier(self, graph):
        edge_indices, targets = gapbase.expand_edges(
            graph, np.empty(0, dtype=np.int64)
        )
        assert edge_indices.size == 0
        assert targets.size == 0


class TestInterleave:
    def test_alternates_elementwise(self):
        a = np.array([1, 3], dtype=np.uint64)
        b = np.array([2, 4], dtype=np.uint64)
        assert gapbase.interleave_streams(a, b).tolist() == [1, 2, 3, 4]

    def test_three_streams(self):
        a = np.array([1], dtype=np.uint64)
        b = np.array([2], dtype=np.uint64)
        c = np.array([3], dtype=np.uint64)
        assert gapbase.interleave_streams(a, b, c).tolist() == [1, 2, 3]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            gapbase.interleave_streams(
                np.array([1], dtype=np.uint64),
                np.array([1, 2], dtype=np.uint64),
            )

    def test_empty(self):
        assert gapbase.interleave_streams().size == 0


class TestBFS:
    def test_trace_confined_to_layout(self, graph):
        trace, glayout = bfs_trace(graph)
        assert len(trace) > graph.edges  # at least one access per edge
        assert addresses_within_layout(trace, glayout)

    def test_deterministic(self, graph):
        a, _ = bfs_trace(graph)
        b, _ = bfs_trace(graph)
        assert np.array_equal(a.addresses, b.addresses)

    def test_source_validation(self, graph):
        with pytest.raises(ValueError):
            bfs_trace(graph, source=graph.nodes)

    def test_max_accesses_cap(self, graph):
        trace, _ = bfs_trace(graph, max_accesses=100)
        # cap is checked per level, so allow one level of overshoot
        assert len(trace) < graph.edges * 2

    def test_workload_wrapper(self, graph):
        workload = bfs_workload(graph)
        assert workload.total_accesses > 0
        assert workload.footprint_huge_regions() >= 3

    def test_metadata(self, graph):
        trace, _ = bfs_trace(graph, source=3)
        assert trace.metadata["source"] == 3
        assert trace.metadata["nodes"] == graph.nodes


class TestSSSP:
    def test_trace_confined_and_larger_than_bfs(self, graph):
        sssp, s_layout = sssp_trace(graph)
        bfs, b_layout = bfs_trace(graph)
        assert addresses_within_layout(sssp, s_layout)
        # SSSP footprint ~2x BFS (weights array), as in Table 1
        assert s_layout.layout.footprint_bytes > 1.5 * b_layout.layout.footprint_bytes

    def test_deterministic(self, graph):
        a, _ = sssp_trace(graph)
        b, _ = sssp_trace(graph)
        assert np.array_equal(a.addresses, b.addresses)

    def test_rounds_bounded(self, graph):
        short, _ = sssp_trace(graph, max_rounds=1)
        longer, _ = sssp_trace(graph, max_rounds=8)
        assert len(short) < len(longer)

    def test_source_validation(self, graph):
        with pytest.raises(ValueError):
            sssp_trace(graph, source=-1)


class TestPageRank:
    def test_access_count_scales_with_iterations(self, graph):
        one, _ = pagerank_trace(graph, iterations=1)
        two, _ = pagerank_trace(graph, iterations=2)
        assert abs(len(two) - 2 * len(one)) < len(one) * 0.01

    def test_trace_confined(self, graph):
        trace, glayout = pagerank_trace(graph, iterations=1)
        assert addresses_within_layout(trace, glayout)

    def test_invalid_iterations(self, graph):
        with pytest.raises(ValueError):
            pagerank_trace(graph, iterations=0)

    def test_gathers_follow_degree_skew(self, graph):
        """rank[v] is gathered once per in-edge: hot vertices' property
        pages are the HUBs."""
        trace, glayout = pagerank_trace(graph, iterations=1)
        rank_vma = glayout.layout["prop.rank"]
        in_rank = (trace.addresses >= rank_vma.start) & (
            trace.addresses < rank_vma.end
        )
        gathered = trace.addresses[in_rank]
        # number of rank reads ~ edges (+1 sweep of next_rank excluded)
        assert gathered.size == graph.edges
