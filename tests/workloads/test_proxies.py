"""Tests for the PARSEC/SPEC workload proxies."""

import numpy as np
import pytest

from repro.workloads import parsec_spec as proxies


ALL_PROXIES = ["canneal", "omnetpp", "xalancbmk", "dedup", "mcf"]


class TestAllProxies:
    @pytest.mark.parametrize("name", ALL_PROXIES)
    def test_builds_with_requested_volume(self, name):
        workload = proxies.proxy_workload(name, accesses=20_000)
        assert workload.total_accesses >= 18_000
        assert workload.footprint_bytes > 0

    @pytest.mark.parametrize("name", ALL_PROXIES)
    def test_addresses_confined_to_layout(self, name):
        workload = proxies.proxy_workload(name, accesses=20_000)
        trace = workload.threads[0].trace
        vmas = list(workload.layout)
        lo = min(v.start for v in vmas)
        hi = max(v.end for v in vmas)
        first = int(trace.vpns.min()) << 12
        last = int(trace.vpns.max()) << 12
        assert first >= lo
        assert last < hi

    @pytest.mark.parametrize("name", ALL_PROXIES)
    def test_deterministic(self, name):
        a = proxies.proxy_workload(name, accesses=5_000)
        b = proxies.proxy_workload(name, accesses=5_000)
        assert np.array_equal(a.threads[0].trace.vpns, b.threads[0].trace.vpns)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            proxies.proxy_workload("firefox")

    def test_seed_changes_trace(self):
        a = proxies.proxy_workload("canneal", accesses=5_000, seed=1)
        b = proxies.proxy_workload("canneal", accesses=5_000, seed=2)
        assert not np.array_equal(a.threads[0].trace.vpns, b.threads[0].trace.vpns)


class TestLocalityContrast:
    """The proxies' page-level locality must reproduce Fig. 1's bands:
    streaming apps (dedup, mcf) far more TLB-friendly than irregular
    ones (canneal)."""

    @staticmethod
    def page_locality(name) -> float:
        workload = proxies.proxy_workload(name, accesses=50_000)
        trace = workload.threads[0].trace
        # compression ratio = consecutive same-page accesses per record
        return trace.compression_ratio

    def test_streaming_apps_compress_better(self):
        assert self.page_locality("dedup") > 3 * self.page_locality("canneal")

    def test_mcf_mostly_sequential(self):
        assert self.page_locality("mcf") > 2.0

    def test_footprints_ordered_like_table1(self):
        """canneal/dedup have the largest footprints of the proxies."""
        sizes = {
            name: proxies.proxy_workload(name, accesses=1000).footprint_bytes
            for name in ALL_PROXIES
        }
        assert sizes["canneal"] > sizes["omnetpp"]
        assert sizes["dedup"] > sizes["xalancbmk"]


class TestBlockInterleave:
    def test_preserves_all_elements(self):
        a = np.arange(10, dtype=np.uint64)
        b = np.arange(100, 105, dtype=np.uint64)
        merged = proxies._block_interleave(a, b, block=4)
        assert sorted(merged.tolist()) == sorted(a.tolist() + b.tolist())

    def test_handles_empty_streams(self):
        a = np.arange(4, dtype=np.uint64)
        empty = np.empty(0, dtype=np.uint64)
        assert proxies._block_interleave(a, empty, 2).tolist() == a.tolist()
        assert proxies._block_interleave(empty, a, 2).tolist() == a.tolist()
