"""Tests for the multi-phase workload and aging-based demotion."""

import copy

import numpy as np
import pytest

from repro.config import scaled_config
from repro.engine.simulation import Simulator
from repro.experiments.common import memory_for
from repro.os.kernel import HugePagePolicy, KernelParams
from repro.workloads.phased import _proportional_merge, phased_workload


class TestPhasedWorkload:
    def test_structure(self):
        workload = phased_workload(accesses_per_phase=10_000)
        assert workload.total_accesses == 20_000
        names = {vma.name for vma in workload.layout}
        assert names == {"arena_a", "arena_b", "stream"}

    def test_phase_separation(self):
        """Arena A dominates the first half, arena B the second."""
        workload = phased_workload(accesses_per_phase=10_000)
        trace = workload.threads[0].trace
        arena_a = workload.layout["arena_a"]
        arena_b = workload.layout["arena_b"]
        half = len(trace.vpns) // 2
        first = trace.vpns[:half].astype(np.uint64) << np.uint64(12)
        second = trace.vpns[half:].astype(np.uint64) << np.uint64(12)

        def share(addresses, vma):
            inside = (addresses >= vma.start) & (addresses < vma.end)
            return inside.mean()

        assert share(first, arena_a) > 0.5
        assert share(first, arena_b) < 0.1
        assert share(second, arena_b) > 0.5
        assert share(second, arena_a) < 0.1

    def test_phase_count_validation(self):
        with pytest.raises(ValueError):
            phased_workload(phases=0)

    def test_deterministic(self):
        a = phased_workload(accesses_per_phase=5_000)
        b = phased_workload(accesses_per_phase=5_000)
        assert np.array_equal(a.threads[0].trace.vpns, b.threads[0].trace.vpns)


class TestProportionalMerge:
    def test_preserves_all_elements(self):
        hot = np.arange(10, dtype=np.uint64)
        cold = np.arange(100, 103, dtype=np.uint64)
        merged = _proportional_merge(hot, cold, ratio=3)
        assert sorted(merged.tolist()) == sorted(hot.tolist() + cold.tolist())

    def test_order_within_streams_preserved(self):
        hot = np.arange(6, dtype=np.uint64)
        cold = np.arange(100, 102, dtype=np.uint64)
        merged = _proportional_merge(hot, cold, ratio=2).tolist()
        assert [x for x in merged if x < 100] == hot.tolist()
        assert [x for x in merged if x >= 100] == cold.tolist()


class TestAgingDemotion:
    """§3.3.3: demotion pays off when the hot set moves between phases."""

    @pytest.fixture(scope="class")
    def setup(self):
        workload = phased_workload(accesses_per_phase=40_000)
        config = scaled_config(
            memory_bytes=memory_for(workload),
            promote_every_accesses=workload.total_accesses // 24,
        )
        return workload, config

    def _run(self, workload, config, demote):
        params = KernelParams(regions_to_promote=8, demotion_enabled=demote)
        simulator = Simulator(
            config,
            policy=HugePagePolicy.PCC,
            params=params,
            fragmentation=0.85,
        )
        result = simulator.run([copy.deepcopy(workload)])
        return result, simulator.kernel._engine.stats

    def test_demotion_reclaims_cold_frames(self, setup):
        workload, config = setup
        without, stats_without = self._run(workload, config, demote=False)
        with_demote, stats_with = self._run(workload, config, demote=True)
        assert stats_without.demotions == 0
        assert stats_with.demotions > 0
        # reclaimed frames enable extra promotions for phase B...
        assert stats_with.promotions > stats_without.promotions
        # ...and the run gets faster
        assert with_demote.total_cycles < without.total_cycles

    def test_aging_never_demotes_steady_hot_data(self):
        """Single-phase run: the continuously-hot arena keeps its huge
        pages; only once-streamed (genuinely cold) regions may be
        reclaimed by the aging probe."""
        workload = phased_workload(accesses_per_phase=40_000, phases=1)
        config = scaled_config(
            memory_bytes=memory_for(workload),
            promote_every_accesses=workload.total_accesses // 24,
        )
        params = KernelParams(regions_to_promote=8, demotion_enabled=True)
        simulator = Simulator(
            config,
            policy=HugePagePolicy.PCC,
            params=params,
            fragmentation=0.85,
        )
        simulator.run([copy.deepcopy(workload)])
        arena_regions = set(workload.layout["arena_a"].huge_regions)
        table = simulator.kernel.processes[1].page_table
        promoted = set(table.promoted_regions())
        # the hot arena's promoted regions all survive to the end
        assert arena_regions & promoted
        demoted_arena = [
            key
            for key in simulator.kernel._engine._cold
            if key[1] in arena_regions
        ]
        assert demoted_arena == []
