"""Fuzz-case generation: determinism, bounds, serialization."""

import json

from repro.config import SystemConfig
from repro.os.kernel import HugePagePolicy
from repro.validation.generators import (
    PAGES_PER_REGION,
    WINDOW_BASE,
    FuzzCase,
    generate_case,
)

SEEDS = range(20)


def test_generation_is_deterministic():
    for seed in SEEDS:
        a, b = generate_case(seed), generate_case(seed)
        assert a.to_dict() == b.to_dict()
        assert a.case_id == b.case_id


def test_distinct_seeds_differ():
    ids = {generate_case(seed).case_id for seed in SEEDS}
    assert len(ids) == len(SEEDS)


def test_streams_stay_inside_the_window():
    for seed in SEEDS:
        case = generate_case(seed)
        assert case.threads, "a case with no threads runs nothing"
        for thread in case.threads:
            assert thread, "empty thread streams are useless"
            assert all(0 <= page < case.window_pages for page in thread)


def test_static_regions_fit_the_window():
    for seed in SEEDS:
        case = generate_case(seed)
        nregions = max(1, case.window_pages // PAGES_PER_REGION)
        assert all(0 <= r < nregions for r in case.static_regions)


def test_json_round_trip_preserves_everything():
    for seed in SEEDS:
        case = generate_case(seed)
        wire = json.dumps(case.to_dict())
        again = FuzzCase.from_dict(json.loads(wire))
        assert again.to_dict() == case.to_dict()
        assert again.case_id == case.case_id


def test_case_realizes_into_runnable_pieces():
    case = generate_case(1)
    config = case.build_config()
    assert isinstance(config, SystemConfig)
    assert config.pcc.entries == case.pcc_entries
    assert config.os.promote_every_accesses == case.promote_every

    params = case.build_params()
    assert params.regions_to_promote == case.regions_to_promote
    assert isinstance(case.huge_policy(), HugePagePolicy)

    workload = case.build_workload()
    assert workload.total_accesses == case.total_accesses
    assert len(workload.threads) == len(case.threads)
    # every generated address must fall inside the synthesized VMA
    vma = workload.layout["fuzz"]
    assert vma.start == WINDOW_BASE
    for thread, pages in zip(workload.threads, case.threads):
        assert thread.trace.total_accesses == len(pages)


def test_workloads_are_fresh_objects_per_call():
    case = generate_case(2)
    first, second = case.build_workload(), case.build_workload()
    assert first is not second
    assert first.threads[0] is not second.threads[0]


def test_oracle_cases_carry_static_regions_somewhere():
    """Across a seed range, ORACLE-relevant knobs actually vary."""
    cases = [generate_case(seed) for seed in range(60)]
    assert any(c.static_regions for c in cases)
    assert any(c.policy == "ORACLE" for c in cases)
    assert any(len(c.threads) > 1 for c in cases)
    assert any(c.demotion for c in cases)
    assert any(c.fragmentation > 0 for c in cases)
