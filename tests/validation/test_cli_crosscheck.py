"""The `repro crosscheck` subcommand: the reference oracle's CLI."""

from repro import cli
from repro.validation.shrink import iter_corpus


class TestCrosscheck:
    def test_small_clean_run_passes(self, capsys):
        assert cli.main(["crosscheck", "--cases", "4"]) == 0
        out = capsys.readouterr().out
        assert "8 machine-vs-reference runs agree" in out
        assert "lru/plru" in out

    def test_single_policy_run(self, capsys):
        assert cli.main(
            ["crosscheck", "--cases", "3", "--tlb-replacement", "plru"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 machine-vs-reference runs agree" in out
        assert "policies plru" in out

    def test_seed_offsets_the_explored_range(self, capsys):
        assert cli.main(
            ["crosscheck", "--cases", "2", "--seed", "30"]
        ) == 0
        assert "seeds 30..31" in capsys.readouterr().out

    def test_planted_plru_drift_is_caught_and_shrunk(
        self, capsys, tmp_path
    ):
        """Self-test: the defect every tier shares must be caught by
        the independent model, shrink, and leave a reproducer."""
        assert cli.main(
            [
                "crosscheck",
                "--cases", "8",
                "--tlb-replacement", "plru",
                "--inject-defect", "tlb-plru-drift",
                "--corpus-dir", str(tmp_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "reference." in out
        assert "defect 'tlb-plru-drift' caught and shrunk" in out
        reproducers = list(iter_corpus(tmp_path))
        assert len(reproducers) == 1

    def test_missed_defect_fails_the_selftest(self, capsys, tmp_path):
        """An LRU-only sweep never consults the tree, so the plru
        defect cannot fire — and the self-test must say so loudly."""
        assert cli.main(
            [
                "crosscheck",
                "--cases", "2",
                "--tlb-replacement", "lru",
                "--inject-defect", "tlb-plru-drift",
                "--corpus-dir", str(tmp_path),
            ]
        ) == 1
        assert "NOT caught" in capsys.readouterr().out


class TestValidatePolicyKnob:
    def test_validate_accepts_the_plru_knob(self, capsys):
        assert cli.main(
            ["validate", "--fuzz", "2", "--tlb-replacement", "plru"]
        ) == 0
        assert "2 cases ok" in capsys.readouterr().out
