"""The reference oracle: machine-vs-model cross-checks and the PLRU
ablation axis.

Three layers of assurance land here:

1. the healthy engine agrees with the independent Ariane-semantics
   model (``repro.validation.reference``) on hit levels, victims, walk
   memory traffic, and end-of-run state, under both replacement
   policies and non-default geometries;
2. the planted ``tlb-plru-drift`` defect — invisible to the tier
   oracle because every tier shares the drifted policy — is caught by
   the cross-check and shrinks to a debuggable reproducer;
3. the ``tlb_replacement``/``tlb_geometry`` case knobs actually reach
   the built config (the generator used to ignore geometry overrides).
"""

import ast

import pytest

from repro.validation import defects
from repro.validation.generators import FuzzCase, generate_case
from repro.validation.oracle import ValidationFailure, check_case
from repro.validation.reference import (
    RefTLB,
    check_case_or_crosscheck,
    check_crosscheck,
)
from repro.validation.shrink import same_failure, shrink_case

#: deliberately off the all-2-way tiny default, where PLRU == LRU
WIDE = {"l1_base": [8, 4], "l2": [16, 8]}
ODD = {"l1_base": [6, 3], "l2": [12, 3]}


def test_reference_imports_nothing_from_the_production_tlb():
    """The model is only a witness if it cannot inherit engine bugs:
    no ``repro.tlb``/``repro.engine`` import may appear at module scope
    (the harness-only names live inside ``check_crosscheck``)."""
    from pathlib import Path

    import repro.validation.reference as reference

    tree = ast.parse(Path(reference.__file__).read_text())
    for node in tree.body:
        names = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            names = [node.module or ""]
        for name in names:
            assert not name.startswith(("repro.tlb", "repro.engine")), (
                f"reference model must stay independent, imports {name}"
            )


@pytest.mark.parametrize("replacement", ["lru", "plru"])
@pytest.mark.parametrize("geometry", [None, WIDE, ODD],
                         ids=["default", "wide", "3way"])
def test_machine_agrees_with_the_reference_model(replacement, geometry):
    for seed in (0, 3):
        case = generate_case(
            seed,
            tlb_replacement=replacement if replacement != "lru" else None,
            tlb_geometry=geometry,
        )
        report = check_crosscheck(case)  # raises on any divergence
        assert report.accesses == sum(len(t) for t in case.threads)
        assert report.replacement == replacement
        assert "victims" in report.checks


def test_crosscheck_exercises_flushes_and_shootdowns():
    """The event schedule must actually fire, or invalidate semantics
    go untested."""
    case = generate_case(3, tlb_replacement="plru")
    report = check_crosscheck(case)
    assert report.flushes + report.shootdowns > 0
    assert report.walks > 0


def test_plru_drift_is_invisible_to_the_tier_oracle():
    """Every engine tier shares the drifted policy, so tier-vs-tier
    comparison stays green — the blind spot the reference exists for."""
    with defects.inject("tlb-plru-drift"):
        check_case(generate_case(0, tlb_replacement="plru",
                                 tlb_geometry=WIDE))


def test_plru_drift_is_caught_and_shrinks_to_a_small_reproducer():
    with defects.inject("tlb-plru-drift"):
        case = generate_case(0, tlb_replacement="plru", tlb_geometry=WIDE)
        with pytest.raises(ValidationFailure) as excinfo:
            check_crosscheck(case)
        failure = excinfo.value
        assert failure.domain == "reference.victim"
        small = shrink_case(
            case,
            same_failure(check_crosscheck, failure.domain),
            budget=250,
        )
    assert small.total_accesses <= 200
    assert small.total_accesses < case.total_accesses
    # and the shrunk case still reproduces under the defect...
    with defects.inject("tlb-plru-drift"):
        with pytest.raises(ValidationFailure):
            check_crosscheck(small)
    # ...while a healthy engine passes it
    check_crosscheck(small)


def test_plru_drift_is_inert_under_lru():
    """LRU never consults the tree, so the defect must not fire there —
    it is a PLRU defect, not generic breakage."""
    with defects.inject("tlb-plru-drift"):
        check_crosscheck(generate_case(0, tlb_geometry=WIDE))


def test_replay_dispatch_routes_reference_domains_to_the_crosscheck():
    case = generate_case(0, tlb_replacement="plru", tlb_geometry=WIDE)
    # a reference-domain record replays through check_crosscheck: under
    # the defect it must fail, where the tier oracle would stay green
    with defects.inject("tlb-plru-drift"):
        with pytest.raises(ValidationFailure):
            check_case_or_crosscheck(case, "reference.victim")
        check_case_or_crosscheck(case, "oracle.tier")  # tier path: green


def test_generate_case_respects_geometry_overrides():
    """Regression: overrides were once drawn *before* the rng consumed
    its stream, then silently dropped on the rebuild."""
    plain = generate_case(7)
    overridden = generate_case(7, tlb_replacement="plru",
                               tlb_geometry=WIDE)
    # same underlying random draws...
    assert overridden.threads == plain.threads
    assert overridden.window_pages == plain.window_pages
    # ...but the knobs must land in the built config
    config = overridden.build_config()
    assert config.tlb.l1_base.replacement == "plru"
    assert config.tlb.l1_base.entries == 8
    assert config.tlb.l1_base.associativity == 4
    assert config.tlb.l2.entries == 16
    assert config.tlb.l2.associativity == 8
    # and the case identity must reflect them
    assert overridden.case_id != plain.case_id


def test_default_knobs_keep_historical_case_ids_stable():
    """``tlb_replacement``/``tlb_geometry`` at their defaults must not
    leak into the serialized form, or every pre-existing corpus id
    breaks."""
    case = generate_case(7)
    payload = case.to_dict()
    assert "tlb_replacement" not in payload
    assert "tlb_geometry" not in payload
    rebuilt = FuzzCase.from_dict(payload)
    assert rebuilt.case_id == case.case_id
    assert rebuilt.tlb_replacement == "lru"
    assert rebuilt.tlb_geometry == {}


def test_ref_tlb_rejects_nothing_the_real_one_accepts():
    """Spot-check the model's own semantics on a tiny scripted case:
    fill priority goes lowest empty way first, invalidate frees the way
    without rewinding the tree."""
    ref = RefTLB(4, 4, "plru", "unit")
    assert ref.fill(10, 12) is None
    assert ref.fill(11, 12) is None
    assert ref.fill(12, 12) is None
    assert ref.fill(13, 12) is None
    assert ref.lookup(10)
    ref.invalidate(12)
    # refill lands in the freed way, not on a victim
    assert ref.fill(14, 12) is None
    assert ref.resident_tags() == {10, 11, 13, 14}
    # a full set now evicts a tree victim, never the just-touched way
    assert ref.lookup(14)
    victim = ref.fill(15, 12)
    assert victim in {10, 11, 13}
