"""Runtime invariant monitor: armed runs pass, planted bugs trip it."""

import pytest

from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy
from repro.validation import defects
from repro.validation.generators import generate_case
from repro.validation.invariants import InvariantViolation
from repro.validation.oracle import TIERS, run_case


def test_monitor_is_off_by_default():
    case = generate_case(0)
    simulator, _ = run_case(case, validate=False)
    assert simulator.machine.monitor is None


def test_monitor_is_installed_and_quiet_on_healthy_runs():
    for seed in range(6):
        case = generate_case(seed)
        simulator, result = run_case(case, validate=True)
        monitor = simulator.machine.monitor
        assert monitor is not None
        # the run completed, so every per-tick check already passed;
        # one more full sweep over final state must also hold
        monitor.check_all(simulator.machine.ticks)
        assert result.accesses == case.total_accesses


@pytest.mark.parametrize("tier", sorted(TIERS))
def test_monitor_covers_every_tier(tier):
    case = generate_case(3)
    simulator, _ = run_case(case, tier=tier, validate=True)
    assert simulator.machine.monitor is not None


def test_stale_hint_defect_trips_the_hint_invariant():
    case = generate_case(0)
    with defects.inject("stale-hints"):
        with pytest.raises(InvariantViolation) as exc:
            run_case(case, tier="fast", policy=HugePagePolicy.PCC)
    assert exc.value.domain.startswith("fastpath.hint")


def test_pcc_decay_defect_trips_the_counter_invariant():
    case = generate_case(0)
    with defects.inject("pcc-no-decay"):
        with pytest.raises(InvariantViolation) as exc:
            run_case(case, policy=HugePagePolicy.PCC)
    assert exc.value.domain.startswith("pcc.counter")


def test_region_count_defect_trips_the_pagetable_invariant():
    case = generate_case(0)
    with defects.inject("region-count-drift"):
        with pytest.raises(InvariantViolation) as exc:
            run_case(case, policy=HugePagePolicy.PCC)
    assert exc.value.domain.startswith("pagetable.region_count")


def test_violation_carries_machine_readable_fields():
    violation = InvariantViolation("tlb.occupancy", "too full")
    assert violation.domain == "tlb.occupancy"
    assert violation.detail == "too full"
    assert "tlb.occupancy" in str(violation)
    # an AssertionError subclass so bare `assert`-style handling works
    assert isinstance(violation, AssertionError)


def test_validate_flag_threads_through_the_simulator_facade():
    case = generate_case(1)
    simulator = Simulator(
        case.build_config().with_(cores=case.cores),
        policy=case.huge_policy(),
        params=case.build_params(),
        validate=True,
    )
    simulator.run([case.build_workload()])
    assert simulator.machine.monitor is not None
