"""The shrinker: reduction power, soundness, budget, persistence."""

import json

import pytest

from repro.validation.generators import FuzzCase, generate_case
from repro.validation.oracle import ValidationFailure
from repro.validation.shrink import (
    CORPUS_SCHEMA,
    iter_corpus,
    load_reproducer,
    same_failure,
    shrink_case,
    write_reproducer,
)


def contains_page(page):
    """Predicate family: the case still touches ``page`` somewhere."""
    return lambda case: any(page in thread for thread in case.threads)


def test_shrinks_to_the_single_relevant_access():
    case = generate_case(7)
    case.threads = [[1, 2, 3, 42, 5, 6] * 20, [9, 9, 9] * 30]
    small = shrink_case(case, contains_page(42), budget=2000)
    assert small.total_accesses == 1
    assert small.threads == [[42]]


def test_drops_irrelevant_threads_first():
    case = generate_case(8)
    case.threads = [[5] * 50, [7] * 50, [5, 7] * 25]
    small = shrink_case(
        case, lambda c: all(contains_page(p)(c) for p in (5, 7)), budget=2000
    )
    assert len(small.threads) <= 2
    assert contains_page(5)(small) and contains_page(7)(small)


def test_simplifies_knobs_toward_boring_values():
    case = generate_case(9)
    case.demotion = True
    case.fragmentation = 0.9
    case.static_regions = [0]
    case.threads = [[3] * 40]
    small = shrink_case(case, contains_page(3), budget=2000)
    assert small.demotion is False
    assert small.fragmentation == 0.0
    assert small.static_regions == []
    assert small.label.startswith("shrunk from seed")


def test_never_mutates_the_input_case():
    case = generate_case(10)
    before = case.to_dict()
    shrink_case(case, contains_page(case.threads[0][0]), budget=200)
    assert case.to_dict() == before


def test_unreproducible_failure_returns_the_case_unshrunken():
    case = generate_case(11)
    small = shrink_case(case, lambda c: False, budget=200)
    assert small.to_dict() == case.to_dict()


def test_budget_bounds_predicate_calls():
    calls = []

    def predicate(candidate):
        calls.append(1)
        return True

    case = generate_case(12)
    shrink_case(case, predicate, budget=25)
    assert len(calls) <= 25


def test_crashing_predicate_counts_as_not_failing():
    case = generate_case(13)

    def fragile(candidate):
        if candidate.total_accesses < case.total_accesses:
            raise RuntimeError("different bug")
        return True

    small = shrink_case(case, fragile, budget=300)
    # nothing smaller survived the predicate, so nothing shrank
    assert small.total_accesses == case.total_accesses


def test_same_failure_matches_domain_prefix_only():
    def failing_with(domain):
        def check(case):
            raise ValidationFailure(domain, "detail", case)

        return check

    predicate = same_failure(failing_with("tier.fast"), "tier.fast")
    assert predicate(generate_case(0))
    predicate = same_failure(failing_with("tier.fast.metrics"), "tier.fast")
    assert predicate(generate_case(0))
    predicate = same_failure(failing_with("ledger.huge_pages"), "tier.fast")
    assert not predicate(generate_case(0))

    def passing(case):
        return None

    assert not same_failure(passing, "tier.fast")(generate_case(0))

    def asserting(case):
        raise AssertionError("plain assert, not a ValidationFailure")

    assert not same_failure(asserting, "tier.fast")(generate_case(0))


def test_write_and_load_round_trip(tmp_path):
    case = generate_case(14)
    failure = ValidationFailure("tier.batch", "batch diverged", case)
    path = write_reproducer(case, failure, tmp_path)
    assert path.parent == tmp_path
    assert path.name == f"case-{case.case_id}.json"

    record = json.loads(path.read_text())
    assert record["schema"] == CORPUS_SCHEMA
    assert record["failure"] == {
        "domain": "tier.batch",
        "detail": "batch diverged",
    }

    again, past = load_reproducer(path)
    assert again.to_dict() == case.to_dict()
    assert past["domain"] == "tier.batch"


def test_load_rejects_unknown_schema(tmp_path):
    bogus = tmp_path / "case-bogus.json"
    bogus.write_text(json.dumps({"schema": "something-else", "case": {}}))
    with pytest.raises(ValueError, match="unknown corpus schema"):
        load_reproducer(bogus)


def test_iter_corpus_is_sorted_and_tolerates_missing_dirs(tmp_path):
    assert list(iter_corpus(tmp_path / "nope")) == []
    for seed in (21, 22, 23):
        write_reproducer(generate_case(seed), None, tmp_path)
    paths = list(iter_corpus(tmp_path))
    assert len(paths) == 3
    assert paths == sorted(paths)
    assert all(p.name.startswith("case-") for p in paths)


def test_shrunk_cases_stay_serializable():
    case = generate_case(15)
    small = shrink_case(case, contains_page(case.threads[0][0]), budget=400)
    wire = json.dumps(small.to_dict())
    assert FuzzCase.from_dict(json.loads(wire)).case_id == small.case_id
