"""The differential oracle: healthy engines pass, broken ones fail."""

import pytest

from repro.os.kernel import HugePagePolicy
from repro.validation import defects
from repro.validation.generators import generate_case
from repro.validation.oracle import (
    ValidationFailure,
    check_case,
    fingerprint,
    run_case,
    translation_fingerprint,
)


def test_healthy_cases_pass_all_checks():
    for seed in range(10):
        report = check_case(generate_case(seed))
        assert "tier:fast" in report.checks
        assert "tier:batch" in report.checks
        assert "determinism" in report.checks
        assert "conservation" in report.checks
        assert "ledger" in report.checks
        assert "invariants" in report.checks


def test_policy_specific_relations_run_for_their_policies():
    seen = set()
    for seed in range(60):
        case = generate_case(seed)
        report = check_case(case)
        seen.update(
            check for check in report.checks if check.startswith("policy:")
        )
        if seen >= {
            "policy:none-inert",
            "policy:oracle-empty≡none",
            "policy:pcc-budget0≡none",
        }:
            break
    assert "policy:none-inert" in seen
    assert "policy:oracle-empty≡none" in seen
    assert "policy:pcc-budget0≡none" in seen


def test_stale_hints_fail_the_oracle_with_a_case_attached():
    case = generate_case(0)
    with defects.inject("stale-hints"):
        with pytest.raises(ValidationFailure) as exc:
            check_case(case)
    failure = exc.value
    # caught either as tier divergence or by the hint invariant —
    # both are hard failures with the offending case attached
    assert failure.domain.startswith(("tier.", "invariant."))
    assert failure.case is case


def test_fingerprint_covers_translation_outcomes():
    case = generate_case(4)
    _, result = run_case(case)
    fp = fingerprint(result)
    for key in ("walks", "l1_hits", "l2_hits", "promotions",
                "total_cycles", "processes"):
        assert key in fp
    translation = translation_fingerprint(result)
    assert "policy" not in translation
    assert translation["walks"] == fp["walks"]


def test_oracle_with_no_static_regions_matches_none():
    """The metamorphic identity itself, asserted directly once."""
    case = generate_case(5)
    case.static_regions = []
    case.policy = "ORACLE"
    _, oracle_run = run_case(case)
    _, none_run = run_case(case, policy=HugePagePolicy.NONE)
    assert translation_fingerprint(oracle_run) == translation_fingerprint(
        none_run
    )


def test_report_counts_case_accesses():
    case = generate_case(6)
    report = check_case(case)
    assert report.case_id == case.case_id
    assert report.accesses == case.total_accesses
    assert report.policy == case.policy
