"""Replay every shrunk reproducer in tests/corpus as a regression test.

Each corpus file is a minimal case that once exposed a real (or
deliberately planted) bug; a healthy engine must pass all of them, so
any regression that resurrects an old failure mode is caught here, in
tier 1, without waiting for the fuzzer to rediscover it.
"""

from pathlib import Path

import pytest

from repro.validation.oracle import check_case
from repro.validation.shrink import iter_corpus, load_reproducer

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"

CASES = list(iter_corpus(CORPUS_DIR))


def test_the_corpus_is_not_empty():
    """The harness self-test seeds the corpus; losing it is a bug."""
    assert CASES, f"no corpus reproducers under {CORPUS_DIR}"


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_passes_on_a_healthy_engine(path):
    case, past_failure = load_reproducer(path)
    report = check_case(case)  # raises ValidationFailure on regression
    assert report.accesses == case.total_accesses
    # the record must say what this reproducer once caught
    assert past_failure.get("domain"), f"{path.name} lacks a failure domain"


def test_corpus_cases_are_minimal_enough_to_debug():
    """Shrinking exists so reproducers stay human-sized."""
    for path in CASES:
        case, _ = load_reproducer(path)
        assert case.total_accesses <= 200, (
            f"{path.name} holds {case.total_accesses} accesses; "
            "re-shrink before committing corpus entries"
        )
