"""Replay every shrunk reproducer in tests/corpus as a regression test.

Each corpus file is a minimal case that once exposed a real (or
deliberately planted) bug; a healthy engine must pass all of them, so
any regression that resurrects an old failure mode is caught here, in
tier 1, without waiting for the fuzzer to rediscover it.
"""

from pathlib import Path

import pytest

from repro.validation.reference import check_case_or_crosscheck
from repro.validation.shrink import iter_corpus, load_reproducer

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"

CASES = list(iter_corpus(CORPUS_DIR))


def test_the_corpus_is_not_empty():
    """The harness self-test seeds the corpus; losing it is a bug."""
    assert CASES, f"no corpus reproducers under {CORPUS_DIR}"


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_passes_on_a_healthy_engine(path):
    case, past_failure = load_reproducer(path)
    # reference.* reproducers replay through the machine-vs-reference
    # cross-check that found them; all others through the tier oracle.
    # either raises ValidationFailure on regression
    report = check_case_or_crosscheck(case, past_failure.get("domain"))
    assert report.accesses == case.total_accesses
    # the record must say what this reproducer once caught
    assert past_failure.get("domain"), f"{path.name} lacks a failure domain"


def test_corpus_cases_are_minimal_enough_to_debug():
    """Shrinking exists so reproducers stay human-sized."""
    for path in CASES:
        case, _ = load_reproducer(path)
        assert case.total_accesses <= 200, (
            f"{path.name} holds {case.total_accesses} accesses; "
            "re-shrink before committing corpus entries"
        )


# ----------------------------------------------------------------------
# the reference oracle's golden sweep record


GOLDEN = CORPUS_DIR / "reference-golden.json"


def test_golden_record_exists_and_is_clean():
    """The reference oracle's corpus entry: no machine-vs-model
    divergence has ever been observed on a healthy engine. The record
    pins the sweep that established that claim."""
    import json

    record = json.loads(GOLDEN.read_text())
    assert record["schema"] == "repro.validation/reference-golden-v1"
    assert record["sweep"]["divergences"] == 0
    assert record["sweep"]["replacements"] == ["lru", "plru"]
    assert record["sweep"]["seed_range"] == [0, 99]


def test_golden_sweep_sample_replays_clean():
    """Re-run a sample of the recorded sweep fresh: the same seeds,
    geometry rotation, and both replacement policies must still agree
    with the reference model on this build."""
    import json

    from repro.cli import CROSSCHECK_GEOMETRIES
    from repro.validation.generators import generate_case
    from repro.validation.reference import check_crosscheck

    record = json.loads(GOLDEN.read_text())
    recorded = [
        tuple(g.items()) if isinstance(g, dict) else g
        for g in record["sweep"]["geometries"]
    ]
    live = [
        tuple({k: list(v) for k, v in g.items()}.items())
        if isinstance(g, dict) else g
        for g in CROSSCHECK_GEOMETRIES
    ]
    assert recorded == live, (
        "crosscheck geometry grid changed; re-run the full sweep and "
        "refresh tests/corpus/reference-golden.json"
    )
    for seed in record["replay_sample_seeds"]:
        geometry = CROSSCHECK_GEOMETRIES[seed % len(CROSSCHECK_GEOMETRIES)]
        for replacement in (None, "plru"):
            case = generate_case(
                seed, tlb_replacement=replacement, tlb_geometry=geometry
            )
            check_crosscheck(case)  # raises on divergence
