"""The `repro validate` subcommand: fuzz, replay, and defect self-test."""

import pytest

from repro import cli
from repro.validation.generators import generate_case
from repro.validation.shrink import iter_corpus, write_reproducer


class TestFuzz:
    def test_small_fuzz_run_passes(self, capsys):
        assert cli.main(["validate", "--fuzz", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 cases ok" in out
        assert "seeds 0..2" in out

    def test_seed_offsets_the_explored_range(self, capsys):
        assert cli.main(["validate", "--fuzz", "2", "--seed", "40"]) == 0
        assert "seeds 40..41" in capsys.readouterr().out


class TestReplay:
    def test_replay_of_passing_corpus_returns_zero(self, capsys, tmp_path):
        for seed in (0, 1):
            write_reproducer(generate_case(seed), None, tmp_path)
        assert cli.main(["validate", "--replay", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "replayed 2 corpus cases, 0 failing" in out

    def test_replay_of_empty_directory_is_a_no_op(self, capsys, tmp_path):
        assert cli.main(["validate", "--replay", str(tmp_path)]) == 0
        assert "no corpus files" in capsys.readouterr().out

    def test_replay_failure_is_nonzero_and_names_the_case(
        self, capsys, tmp_path
    ):
        from repro.validation import defects

        write_reproducer(generate_case(0), None, tmp_path)
        with defects.inject("region-count-drift"):
            assert cli.main(["validate", "--replay", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL case-" in out
        assert "1 failing" in out

    def test_corrupt_corpus_file_is_reported_and_skipped(
        self, capsys, tmp_path
    ):
        """A bad reproducer must not abort the replay of the others."""
        write_reproducer(generate_case(0), None, tmp_path)
        write_reproducer(generate_case(1), None, tmp_path)
        paths = list(iter_corpus(tmp_path))
        paths[0].write_text("{this is not json")
        assert cli.main(["validate", "--replay", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert f"BAD  {paths[0].name}" in out
        # the intact case was still replayed
        assert "ok   " in out
        assert "1 unreadable" in out

    def test_truncated_corpus_file_is_reported_and_skipped(
        self, capsys, tmp_path
    ):
        """Valid JSON missing the case schema is unreadable, not fatal."""
        write_reproducer(generate_case(0), None, tmp_path)
        bad = tmp_path / "case-truncated.json"
        bad.write_text('{"schema": "repro.case/v1"}')
        assert cli.main(["validate", "--replay", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "BAD  case-truncated.json" in out
        assert "1 unreadable" in out


class TestDefectSelfTest:
    @pytest.mark.parametrize(
        "defect", ["stale-hints", "pcc-no-decay", "region-count-drift"]
    )
    def test_planted_defect_is_caught_and_shrunk(
        self, capsys, tmp_path, defect
    ):
        assert (
            cli.main(
                [
                    "validate",
                    "--fuzz", "10",
                    "--inject-defect", defect,
                    "--corpus-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"defect {defect!r} caught and shrunk" in out
        reproducers = list(iter_corpus(tmp_path))
        assert reproducers, "no reproducer written for the caught defect"
        from repro.validation.shrink import load_reproducer

        case, failure = load_reproducer(reproducers[0])
        assert case.total_accesses <= 200
        assert failure["domain"]

    def test_uncaught_defect_fails_the_self_test(self, capsys, monkeypatch):
        """A defect injection that is a no-op must flunk the self-test."""
        import contextlib

        from repro.validation import defects

        monkeypatch.setitem(
            defects.DEFECTS, "noop", contextlib.nullcontext
        )
        assert cli.main(["validate", "--fuzz", "2",
                         "--inject-defect", "noop"]) == 1
        assert "NOT caught" in capsys.readouterr().out

    def test_unknown_defect_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown defect"):
            cli.main(["validate", "--fuzz", "1",
                      "--inject-defect", "not-a-defect"])
