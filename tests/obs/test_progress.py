"""Live progress reporting: reporter mechanics, delivery paths, engine
integration, and the no-perturbation property the acceptance gate pins."""

import json

import pytest

from repro.obs import progress as progress_module
from repro.obs.progress import (
    PROGRESS_SCHEMA,
    ProgressReporter,
    SpoolSink,
    SpoolTailer,
    add_sink,
    current_label,
    progress_enabled,
    progress_for_run,
    progress_scope,
    read_spool,
    remove_sink,
    set_worker_label,
)


class FakeClock:
    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def reporter(sink, *, total=1000, cadence_ms=250, clock=None):
    return ProgressReporter(
        "job-x", total, [sink], cadence_ms=cadence_ms,
        clock=clock or FakeClock(),
    )


class TestReporter:
    def test_first_feed_point_is_immediately_due(self):
        clock = FakeClock()
        rep = reporter(lambda s: None, clock=clock)
        assert rep.due()

    def test_cadence_gates_subsequent_emits(self):
        clock = FakeClock()
        seen = []
        rep = reporter(seen.append, cadence_ms=250, clock=clock)
        rep.emit(done=10)
        assert not rep.due()
        clock.advance(0.1)
        assert not rep.due()
        clock.advance(0.2)
        assert rep.due()

    def test_snapshot_schema_and_sequence(self):
        seen = []
        rep = reporter(seen.append, cadence_ms=0)
        rep.emit(done=1, accesses=64, ticks=2, promotions=1, epochs=3,
                 tier="columnar")
        rep.finish(done=1000, tier="columnar")
        first, last = seen
        assert first["schema"] == PROGRESS_SCHEMA
        assert first["seq"] == 1 and last["seq"] == 2
        assert first["job"] == "job-x"
        assert first["records_total"] == 1000
        assert first["tier"] == "columnar"
        assert first["final"] is False and last["final"] is True

    def test_throughput_ewma_and_eta(self):
        clock = FakeClock()
        seen = []
        rep = reporter(seen.append, total=1000, cadence_ms=0, clock=clock)
        rep.emit(done=0)
        clock.advance(1.0)
        rep.emit(done=100)  # first interval: instantaneous rate
        assert seen[-1]["rate_rps"] == pytest.approx(100.0)
        assert seen[-1]["eta_s"] == pytest.approx(9.0)
        clock.advance(1.0)
        rep.emit(done=400)  # EWMA: 0.3*300 + 0.7*100
        assert seen[-1]["rate_rps"] == pytest.approx(160.0)

    def test_final_snapshot_has_no_eta(self):
        seen = []
        rep = reporter(seen.append, cadence_ms=0)
        rep.finish(done=1000)
        assert seen[-1]["eta_s"] is None

    def test_raising_sink_is_dropped_not_fatal(self):
        good = []

        def bad(snapshot):
            raise RuntimeError("sink exploded")

        rep = ProgressReporter("j", 10, [bad, good.append], cadence_ms=0,
                               clock=FakeClock())
        rep.emit(done=1)
        rep.emit(done=2)
        assert [s["records_done"] for s in good] == [1, 2]


class TestDeliveryPaths:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(progress_module.SPOOL_ENV, raising=False)
        assert not progress_enabled()
        assert progress_for_run(total=100) is None

    def test_scope_sink_and_label(self, monkeypatch):
        monkeypatch.delenv(progress_module.SPOOL_ENV, raising=False)
        seen = []
        with progress_scope("job-7", seen.append):
            rep = progress_for_run(total=10)
            assert rep is not None
            rep.emit(done=5)
        assert seen[0]["job"] == "job-7"

    def test_scopes_nest_innermost_wins(self):
        with progress_scope("outer"):
            with progress_scope("inner"):
                assert current_label() == "inner"
            assert current_label() == "outer"

    def test_worker_label_is_the_fallback(self):
        set_worker_label("pool-worker-3")
        try:
            assert current_label() == "pool-worker-3"
            with progress_scope("scoped"):
                assert current_label() == "scoped"
        finally:
            set_worker_label(None)

    def test_global_sink(self, monkeypatch):
        monkeypatch.delenv(progress_module.SPOOL_ENV, raising=False)
        seen = []
        sink = add_sink(seen.append)
        try:
            rep = progress_for_run(label="g", total=4)
            assert rep is not None
            rep.emit(done=4, final=True)
        finally:
            remove_sink(sink)
        assert seen and seen[0]["job"] == "g"
        assert progress_for_run() is None


class TestSpool:
    def test_round_trip(self, tmp_path):
        sink = SpoolSink(tmp_path)
        rep = ProgressReporter("spooled", 10, [sink], cadence_ms=0,
                               clock=FakeClock())
        rep.emit(done=3)
        rep.finish(done=10)
        snapshots = read_spool(tmp_path)
        assert [s["records_done"] for s in snapshots] == [3, 10]
        assert snapshots[-1]["final"] is True

    def test_tailer_is_incremental(self, tmp_path):
        sink = SpoolSink(tmp_path)
        rep = ProgressReporter("inc", 10, [sink], cadence_ms=0,
                               clock=FakeClock())
        tailer = SpoolTailer(tmp_path)
        rep.emit(done=1)
        assert len(tailer.poll()) == 1
        assert tailer.poll() == []
        rep.emit(done=2)
        assert [s["records_done"] for s in tailer.poll()] == [2]

    def test_tailer_leaves_partial_lines(self, tmp_path):
        path = tmp_path / "progress-run-1.jsonl"
        whole = json.dumps({"records_done": 1}) + "\n"
        path.write_text(whole + '{"records_done": 2')  # torn mid-append
        tailer = SpoolTailer(tmp_path)
        assert [s["records_done"] for s in tailer.poll()] == [1]
        with open(path, "a") as handle:
            handle.write("}\n")
        assert [s["records_done"] for s in tailer.poll()] == [2]

    def test_tailer_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "progress-run-2.jsonl"
        path.write_text('{"ok": 1}\nnot json at all\n{"ok": 2}\n')
        assert [s.get("ok") for s in read_spool(tmp_path)] == [1, 2]

    def test_spool_env_enables_progress(self, tmp_path, monkeypatch):
        monkeypatch.setenv(progress_module.SPOOL_ENV, str(tmp_path))
        assert progress_enabled()
        rep = progress_for_run(label="env", total=2)
        assert rep is not None
        rep.finish(done=2)
        assert read_spool(tmp_path)[0]["job"] == "env"


class TestEngineIntegration:
    @staticmethod
    def _run_quick(observe=None):
        import copy

        from repro.engine.simulation import Simulator
        from repro.experiments.common import build_named_workload, config_for
        from repro.os.kernel import HugePagePolicy

        workload = build_named_workload(
            "BFS", graph_scale=8, proxy_accesses=20_000
        )
        config = config_for(workload)
        simulator = Simulator(config, policy=HugePagePolicy.PCC,
                              observe=observe)
        return simulator.run([copy.deepcopy(workload)])

    def test_engine_emits_progress_snapshots(self, monkeypatch):
        monkeypatch.setenv(progress_module.CADENCE_ENV, "0")
        seen = []
        with progress_scope("engine-job", seen.append):
            result = self._run_quick()
        assert len(seen) >= 2
        final = seen[-1]
        assert final["final"] is True
        assert final["job"] == "engine-job"
        assert final["records_done"] == final["records_total"]
        assert final["accesses"] == result.accesses
        # progress must not kick the run off the columnar tier
        assert final["tier"] == "columnar"
        assert all(s["seq"] == i + 1 for i, s in enumerate(seen))

    def test_progress_does_not_perturb_results(self, monkeypatch):
        baseline = self._run_quick()
        monkeypatch.setenv(progress_module.CADENCE_ENV, "0")
        with progress_scope("identity", lambda s: None):
            progressed = self._run_quick()
        assert progressed.total_cycles == baseline.total_cycles
        assert progressed.walks == baseline.walks
        assert progressed.promotions == baseline.promotions
        assert progressed.promotion_timeline == baseline.promotion_timeline

    def test_no_sink_means_no_reporter(self, monkeypatch):
        monkeypatch.delenv(progress_module.SPOOL_ENV, raising=False)
        result = self._run_quick()
        assert result.accesses > 0  # ran clean with progress fully off
