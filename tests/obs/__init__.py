"""Observability layer tests: tracer, histograms, inspector, logging."""
