"""End-to-end observability: bit-identical stats, merged worker spans.

The layer's contract is that observing a run changes nothing about the
run: enabling tracing (or ``REPRO_OBS``) must leave every simulation
statistic bit-identical, add a ``distributions`` section to the metrics
export, and produce a Perfetto-loadable trace whose spans nest through
the OS tick phases — including spans shipped back from fan-out worker
processes.
"""

import json
import os

import pytest

from repro.engine.simulation import Simulator
from repro.experiments.common import (
    ExperimentScale,
    build_named_workload,
    clone_workload,
    config_for,
)
from repro.obs import tracer as tracer_module
from repro.obs.inspect import validate_trace
from repro.obs.observer import OBS_ENV
from repro.os.kernel import HugePagePolicy

TINY = ExperimentScale(name="tiny", graph_scale=10, proxy_accesses=25_000)


@pytest.fixture(autouse=True)
def _tracing_off_between_tests(monkeypatch):
    from repro.obs.runid import RUN_ID_ENV

    monkeypatch.delenv(OBS_ENV, raising=False)
    monkeypatch.delenv(RUN_ID_ENV, raising=False)
    tracer_module.disable()
    yield
    tracer_module.disable()


def _fingerprint(result) -> tuple:
    # Engine-tier instrumentation (fastpath.*) is excluded, as in the
    # differential oracle: an observed run keeps the quantum tiers so
    # the per-record translate wrapper sees every walk, while an
    # unobserved run may retire whole epochs columnar — the simulation
    # statistics must still match bit-for-bit.
    counters = {
        name: value
        for name, value in result.metrics["counters"].items()
        if ".fastpath." not in name
    }
    return (
        result.policy,
        result.total_cycles,
        result.accesses,
        result.walks,
        result.l1_hits,
        result.l2_hits,
        result.promotions,
        result.demotions,
        tuple(result.promotion_timeline),
        json.dumps(counters, sort_keys=True),
    )


def _run(observe=None):
    workload = build_named_workload(
        "BFS", graph_scale=TINY.graph_scale, proxy_accesses=TINY.proxy_accesses
    )
    config = config_for(workload)
    simulator = Simulator(config, policy=HugePagePolicy.PCC, observe=observe)
    return simulator.run([clone_workload(workload)])


class TestBitIdentity:
    def test_traced_run_matches_untraced_run_exactly(self, tmp_path):
        baseline = _run(observe=False)
        tracer_module.enable(spool_dir=tmp_path / "spool")
        try:
            traced = _run()
        finally:
            tracer_module.disable()
        assert _fingerprint(traced) == _fingerprint(baseline)

    def test_env_observed_run_matches_too(self, monkeypatch):
        baseline = _run(observe=False)
        monkeypatch.setenv(OBS_ENV, "1")
        observed = _run()
        assert _fingerprint(observed) == _fingerprint(baseline)

    def test_unobserved_run_exports_empty_distributions(self):
        result = _run()
        assert result.metrics["distributions"] == {}

    def test_observed_run_populates_engine_histograms(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV, "1")
        result = _run()
        distributions = result.metrics["distributions"]
        assert distributions["walk_latency_cycles"]["count"] == result.walks
        assert distributions["tick_duration_us"]["count"] > 0
        percentiles = distributions["walk_latency_cycles"]["percentiles"]
        assert set(percentiles) == {"p50", "p95", "p99"}
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]

    def test_metrics_meta_carries_run_id(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_ID", "abcd12340001")
        result = _run()
        assert result.metrics["meta"]["run_id"] == "abcd12340001"


class TestTraceContents:
    def test_span_taxonomy_nests_through_tick_phases(self, tmp_path):
        tracer = tracer_module.enable(spool_dir=tmp_path / "spool")
        try:
            _run()
            doc = tracer.export()
        finally:
            tracer_module.disable()
        assert validate_trace(doc) == []
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {}
        for event in spans:
            by_name.setdefault(event["name"], []).append(event)
        for required in ("machine.sim_loop", "quantum", "os_tick", "tick.scan",
                         "tick.rank", "tick.promote", "machine.collect"):
            assert required in by_name, f"missing span {required!r}"
        loop_id = by_name["machine.sim_loop"][0]["args"]["span"]
        # in-loop ticks nest under the sim loop; the final drain tick
        # fires after the loop closes and is legitimately parentless
        in_loop = [t for t in by_name["os_tick"] if not t["args"]["final"]]
        assert in_loop
        assert all(t["args"]["parent"] == loop_id for t in in_loop)
        scan_parents = {t["args"]["parent"] for t in by_name["tick.scan"]}
        tick_ids = {t["args"]["span"] for t in by_name["os_tick"]}
        assert scan_parents <= tick_ids
        # quantum spans ride per-core lanes, off the main lane
        assert {e["tid"] for e in by_name["quantum"]} == {10}

    def test_pcc_snapshots_carry_topk_and_tlb(self, tmp_path):
        tracer = tracer_module.enable(spool_dir=tmp_path / "spool")
        try:
            _run()
            doc = tracer.export()
        finally:
            tracer_module.disable()
        snapshots = [e for e in doc["traceEvents"]
                     if e["ph"] == "i" and e["name"] == "pcc_state"]
        assert snapshots
        args = snapshots[-1]["args"]
        assert args["top_regions"], "expected ranked PCC regions"
        assert all(len(row) == 3 for row in args["top_regions"])
        assert args["tlb"], "expected TLB occupancy map"


def _traced_task(x: int) -> int:
    return x * x


class TestFanOutTracing:
    def test_worker_spans_merge_into_parent_trace(self, tmp_path, monkeypatch):
        from repro.experiments.parallel import fan_out

        monkeypatch.setenv("REPRO_RUN_ID", "feed43210001")
        tracer = tracer_module.enable(spool_dir=tmp_path / "spool")
        try:
            results = fan_out(_traced_task, [1, 2, 3, 4], jobs=2)
            doc = tracer.export()
        finally:
            tracer_module.disable()
        assert results == [1, 4, 9, 16]
        assert validate_trace(doc) == []
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        fanout = [e for e in spans if e["name"] == "fanout"]
        tasks = [e for e in spans if e["name"] == "fanout.task"]
        assert len(fanout) == 1 and len(tasks) == 4
        parent_pid = os.getpid()
        assert {e["pid"] for e in tasks} - {parent_pid}, (
            "expected at least one task span from a worker process"
        )
        fanout_id = fanout[0]["args"]["span"]
        assert all(t["args"]["parent"] == fanout_id for t in tasks)

    def test_serial_fan_out_traces_without_spool(self):
        from repro.experiments.parallel import fan_out

        tracer = tracer_module.enable()
        try:
            results = fan_out(_traced_task, [3], jobs=1)
            doc = tracer.export()
        finally:
            tracer_module.disable()
        assert results == [9]
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"fanout", "fanout.task"} <= names

    def test_fan_out_wall_time_histogram_recorded(self, monkeypatch):
        from repro.experiments.parallel import fan_out
        from repro.resilience import bus

        monkeypatch.setenv(OBS_ENV, "1")
        before = bus.registry().histogram("fanout.task_wall_us", unit="us").count
        fan_out(_traced_task, [5, 6], jobs=1)
        after = bus.registry().histogram("fanout.task_wall_us", unit="us").count
        assert after == before + 2


class TestRunIdCorrelation:
    def test_journal_shards_record_the_invocations_run_id(self, tmp_path,
                                                          monkeypatch):
        from repro.resilience.journal import RunJournal

        monkeypatch.setenv("REPRO_RUN_ID", "beef56780001")
        journal = RunJournal(tmp_path)
        key = journal.key_for(_traced_task, 9)
        journal.commit(key, 81)
        assert journal.run_id_of(key) == "beef56780001"
        assert journal.load(key) == 81

    def test_collector_and_trace_agree_on_run_id(self, tmp_path, monkeypatch):
        from repro.metrics import collecting

        monkeypatch.setenv("REPRO_RUN_ID", "dead90120001")
        tracer = tracer_module.enable()
        try:
            with collecting() as collector:
                _run()
            doc = tracer.export()
        finally:
            tracer_module.disable()
        assert collector.export()["run_id"] == "dead90120001"
        assert doc["otherData"]["run_id"] == "dead90120001"
        assert collector.runs[0]["meta"]["run_id"] == "dead90120001"

    def test_resilience_publications_carry_run_id(self, monkeypatch):
        from repro.metrics import collecting
        from repro.resilience import bus

        monkeypatch.setenv("REPRO_RUN_ID", "face34560001")
        with collecting() as collector:
            bus.publish()
        assert collector.runs[0]["meta"]["run_id"] == "face34560001"
        assert collector.runs[0]["meta"]["component"] == "resilience"
