"""Structured logging: run id / span stamping, JSON lines, run ids."""

import json
import logging

from repro.obs import log as log_module
from repro.obs.runid import RUN_ID_ENV, current_run_id, new_run_id, set_run_id
from repro.obs.log import (
    JsonLineFormatter,
    TextFormatter,
    _ContextFilter,
    get_logger,
    log_event,
)


def _record(event: str = "cache corrupted", **fields) -> logging.LogRecord:
    record = logging.LogRecord(
        name="repro.trace.cache",
        level=logging.WARNING,
        pathname=__file__,
        lineno=1,
        msg=event,
        args=(),
        exc_info=None,
    )
    record.fields = fields
    _ContextFilter().filter(record)
    return record


class TestRunId:
    def test_new_ids_are_12_hex_and_unique(self):
        ids = {new_run_id() for _ in range(50)}
        assert len(ids) == 50
        assert all(len(i) == 12 and int(i, 16) >= 0 for i in ids)

    def test_env_pins_the_id(self, monkeypatch):
        monkeypatch.setenv(RUN_ID_ENV, "feed00000001")
        assert current_run_id() == "feed00000001"

    def test_set_run_id_exports_to_children(self, monkeypatch):
        monkeypatch.delenv(RUN_ID_ENV, raising=False)
        import os

        effective = set_run_id("beef00000002")
        assert effective == "beef00000002"
        assert os.environ[RUN_ID_ENV] == "beef00000002"

    def test_set_run_id_keeps_existing_env(self, monkeypatch):
        monkeypatch.setenv(RUN_ID_ENV, "aaaa00000003")
        assert set_run_id() == "aaaa00000003"


class TestFormatters:
    def test_json_line_carries_context_and_fields(self, monkeypatch):
        monkeypatch.setenv(RUN_ID_ENV, "cafe00000004")
        doc = json.loads(JsonLineFormatter().format(_record(entry="BFS", key="k1")))
        assert doc["event"] == "cache corrupted"
        assert doc["level"] == "warning"
        assert doc["logger"] == "repro.trace.cache"
        assert doc["run_id"] == "cafe00000004"
        assert doc["entry"] == "BFS" and doc["key"] == "k1"
        assert "span" in doc  # None outside any span, but always present

    def test_json_line_records_open_span_id(self, monkeypatch):
        from repro.obs import tracer as tracer_module

        monkeypatch.setenv(RUN_ID_ENV, "cafe00000005")
        tracer = tracer_module.enable()
        try:
            with tracer.span("outer") as span_id:
                doc = json.loads(JsonLineFormatter().format(_record()))
            assert doc["span"] == span_id
        finally:
            tracer_module.disable()

    def test_text_form_is_terse_and_tagged(self, monkeypatch):
        monkeypatch.setenv(RUN_ID_ENV, "cafe00000006")
        line = TextFormatter().format(_record(entry="BFS"))
        assert line.startswith("repro[cafe00000006] warning repro.trace.cache:")
        assert "entry=BFS" in line


class TestLogEvent:
    def test_log_event_reaches_caplog_with_fields(self, caplog):
        logger = get_logger("experiments.parallel")
        with caplog.at_level(logging.INFO, logger="repro"):
            log_event(logger, "fan_out starting", tasks=4, jobs=2)
        (record,) = [r for r in caplog.records if r.message == "fan_out starting"]
        assert record.fields == {"tasks": 4, "jobs": 2}

    def test_pipeline_warnings_use_repro_namespace(self, caplog, tmp_path):
        """The trace cache logs corruption through the repro namespace."""
        from repro.trace.cache import TraceCache

        cache = TraceCache(tmp_path)
        key = cache.key("BFS", {"scale": 1})
        cache._meta_path(key).write_text("{torn")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert cache.get_entry("BFS", {"scale": 1}) is None
        assert any(
            "quarantined" in record.message and record.name == "repro.trace.cache"
            for record in caplog.records
        )
