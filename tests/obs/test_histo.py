"""Histogram correctness: percentiles vs numpy, merge, round trip."""

import numpy as np
import pytest

from repro.obs.histo import RATIO, Histogram, bucket_bounds, bucket_index


def _reference_samples(seed: int = 7, n: int = 5000) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Lognormal spread resembling walk latencies: a tight body plus a
    # long tail spanning several octaves.
    return np.exp(rng.normal(loc=4.0, scale=0.6, size=n))


class TestBuckets:
    def test_index_and_bounds_agree(self):
        for value in (0.5, 1.0, 47.0, 1e6):
            lo, hi = bucket_bounds(bucket_index(value))
            assert lo <= value < hi

    def test_bucket_width_is_one_eighth_octave(self):
        lo, hi = bucket_bounds(16)
        assert hi / lo == pytest.approx(RATIO)

    def test_nonpositive_values_underflow(self):
        lo, hi = bucket_bounds(bucket_index(0.0))
        assert (lo, hi) == (0.0, 0.0)
        assert bucket_index(-3.0) == bucket_index(0.0)


class TestPercentilesVsNumpy:
    def test_within_one_bucket_of_numpy_linear(self):
        samples = _reference_samples()
        histogram = Histogram("walk_latency_cycles", unit="cycles")
        histogram.record_many(samples)
        for q in (50.0, 90.0, 95.0, 99.0):
            expected = float(np.percentile(samples, q))
            measured = histogram.percentile(q)
            # one geometric bucket is ~9% wide; that bounds the error
            assert measured == pytest.approx(expected, rel=RATIO - 1.0)

    def test_extremes_clamp_to_observed_min_max(self):
        samples = _reference_samples(seed=11, n=500)
        histogram = Histogram("h")
        histogram.record_many(samples)
        assert histogram.percentile(0.0) == pytest.approx(float(samples.min()))
        assert histogram.percentile(100.0) <= float(samples.max()) * RATIO

    def test_single_sample_is_exact(self):
        histogram = Histogram("h")
        histogram.record(123.0)
        assert histogram.percentile(50.0) == 123.0

    def test_empty_histogram_reports_zero(self):
        assert Histogram("h").percentile(99.0) == 0.0


class TestMergeAndSerialization:
    def test_merge_equals_recording_everything(self):
        samples = _reference_samples(seed=3, n=2000)
        whole = Histogram("h", unit="us")
        whole.record_many(samples)
        left, right = Histogram("h"), Histogram("h")
        left.record_many(samples[:700])
        right.record_many(samples[700:])
        left.merge(right)
        assert left.counts == whole.counts
        assert left.count == whole.count
        assert left.min == whole.min and left.max == whole.max
        for q in (50.0, 95.0, 99.0):
            assert left.percentile(q) == whole.percentile(q)

    def test_dict_round_trip(self):
        histogram = Histogram("h", unit="cycles")
        histogram.record_many([1.0, 10.0, 100.0, 1000.0, 0.0])
        doc = histogram.as_dict()
        rebuilt = Histogram.from_dict("h", doc)
        assert rebuilt.counts == histogram.counts
        assert rebuilt.count == histogram.count
        assert rebuilt.unit == "cycles"
        assert rebuilt.percentiles() == histogram.percentiles()

    def test_as_dict_is_json_safe_and_sorted(self):
        import json

        histogram = Histogram("h")
        histogram.record_many([5.0, 50.0, 0.0])
        doc = histogram.as_dict()
        json.dumps(doc)
        lows = [bucket[0] for bucket in doc["buckets"]]
        assert lows == sorted(lows)

    def test_mean_and_count_track_every_sample(self):
        histogram = Histogram("h")
        histogram.record_many([2.0, 4.0, 6.0])
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(4.0)
