"""Span tracer: nesting, exception safety, cross-process shard merge."""

import json
import os

import pytest

from repro.obs import tracer as tracer_module
from repro.obs.tracer import (
    EPOCH_ENV,
    OWNER_ENV,
    SPOOL_ENV,
    TRACE_SCHEMA,
    SpanTracer,
    span,
    traced,
)


@pytest.fixture(autouse=True)
def _clean_tracer_state(monkeypatch):
    """Every test starts with tracing off and no tracer env exported."""
    from repro.obs.runid import RUN_ID_ENV

    for env in (SPOOL_ENV, EPOCH_ENV, OWNER_ENV, RUN_ID_ENV):
        monkeypatch.delenv(env, raising=False)
    tracer_module.disable()
    yield
    tracer_module.disable()


def _spans(tracer):
    return [e for e in tracer.events if e["ph"] == "X"]


class TestSpanNesting:
    def test_child_records_parent_span_id(self):
        tracer = SpanTracer(run_id="t" * 12)
        with tracer.span("outer") as outer_id:
            with tracer.span("inner") as inner_id:
                assert tracer.current_span_id() == inner_id
        inner, outer = _spans(tracer)
        assert inner["name"] == "inner"  # children close first
        assert inner["args"]["parent"] == outer_id
        assert outer["args"]["span"] == outer_id
        assert "parent" not in outer["args"]

    def test_span_ids_are_pid_qualified_and_unique(self):
        tracer = SpanTracer()
        ids = {tracer.next_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(i.startswith(f"{os.getpid()}:") for i in ids)

    def test_explicit_parent_links_only_at_stack_top(self):
        tracer = SpanTracer()
        with tracer.span("task", parent="999:1"):
            with tracer.span("nested", parent="999:2"):
                pass
        nested, task = _spans(tracer)
        assert task["args"]["parent"] == "999:1"
        # the local enclosing span beats the explicit cross-process hint
        assert nested["args"]["parent"] == task["args"]["span"]

    def test_span_args_and_timing_recorded(self):
        tracer = SpanTracer()
        with tracer.span("quantum", cat="engine", tid=12, core=2):
            pass
        (event,) = _spans(tracer)
        assert event["cat"] == "engine"
        assert event["tid"] == 12
        assert event["args"]["core"] == 2
        assert event["dur"] >= 0.0


class TestExceptionSafety:
    def test_exception_propagates_and_span_closes_tagged(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing"):
                raise ValueError("boom")
        (event,) = _spans(tracer)
        assert event["args"]["error"] == "ValueError"
        assert tracer.current_span_id() is None

    def test_stack_unwinds_past_nested_failure(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with pytest.raises(RuntimeError):
                with tracer.span("inner"):
                    raise RuntimeError("x")
            assert tracer.current_span_id() is not None
        assert tracer.current_span_id() is None
        assert len(_spans(tracer)) == 2


class TestModuleSwitch:
    def test_span_is_noop_when_disabled(self):
        assert not tracer_module.tracing_enabled()
        with span("anything") as span_id:
            assert span_id is None

    def test_enable_exports_env_and_disable_retracts(self, tmp_path):
        tracer = tracer_module.enable(run_id="e" * 12, spool_dir=tmp_path / "spool")
        assert tracer_module.tracing_enabled()
        assert os.environ[SPOOL_ENV] == str(tmp_path / "spool")
        assert os.environ[OWNER_ENV] == str(os.getpid())
        assert int(os.environ[EPOCH_ENV]) == tracer.epoch_ns
        tracer_module.disable()
        assert not tracer_module.tracing_enabled()
        assert SPOOL_ENV not in os.environ and OWNER_ENV not in os.environ

    def test_traced_decorator_bare_and_named(self):
        @traced
        def bare():
            return 1

        @traced("custom.name", cat="test")
        def named():
            return 2

        # disabled: plain passthrough
        assert bare() == 1 and named() == 2
        tracer = tracer_module.enable()
        try:
            assert bare() == 1 and named() == 2
            names = {e["name"] for e in _spans(tracer)}
            assert "custom.name" in names
            assert any(name.endswith("bare") for name in names)
        finally:
            tracer_module.disable()

    def test_worker_setup_defuses_foreign_pid_tracer(self, monkeypatch):
        foreign = SpanTracer()
        foreign.pid = foreign.pid + 1  # simulate a fork-inherited tracer
        tracer_module._ACTIVE = foreign
        assert tracer_module.worker_setup() is None
        assert not tracer_module.tracing_enabled()

    def test_worker_setup_builds_tracer_on_shared_epoch(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SPOOL_ENV, str(tmp_path))
        monkeypatch.setenv(EPOCH_ENV, "123456789")
        monkeypatch.setenv(OWNER_ENV, str(os.getpid() + 1))
        worker = tracer_module.worker_setup()
        assert worker is not None
        assert worker.epoch_ns == 123456789
        assert worker.spool_dir == tmp_path


class TestCrossProcessMerge:
    def _worker(self, parent: SpanTracer, pid: int) -> SpanTracer:
        worker = SpanTracer(
            run_id=parent.run_id, epoch_ns=parent.epoch_ns, spool_dir=parent.spool_dir
        )
        worker.pid = pid
        return worker

    def test_shards_merge_sorted_and_deterministic(self, tmp_path):
        parent = SpanTracer(run_id="m" * 12, spool_dir=tmp_path)
        with parent.span("fanout"):
            pass
        for pid in (70002, 70001):
            worker = self._worker(parent, pid)
            with worker.span("fanout.task", parent="1:1", task=f"t{pid}"):
                pass
            assert worker.ship_shard() is not None
            assert worker.events == []  # buffer cleared after shipping
        first = parent.export()
        second = parent.export()
        assert first == second
        events = [e for e in first["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in events} == {parent.pid, 70001, 70002}
        keys = [(e["ts"], e["pid"], e["tid"], e["name"]) for e in events]
        assert keys == sorted(keys)

    def test_export_names_processes_and_lanes(self, tmp_path):
        parent = SpanTracer(run_id="n" * 12, spool_dir=tmp_path)
        with parent.span("work"):
            pass
        worker = self._worker(parent, 70009)
        with worker.span("fanout.task"):
            pass
        worker.ship_shard()
        doc = parent.export()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {
            (e["pid"], e["args"]["name"])
            for e in meta
            if e["name"] == "process_name"
        }
        assert (parent.pid, "repro") in names
        assert (70009, "worker-70009") in names
        assert doc["otherData"] == {"schema": TRACE_SCHEMA, "run_id": "n" * 12}

    def test_shards_of_other_runs_are_ignored(self, tmp_path):
        parent = SpanTracer(run_id="p" * 12, spool_dir=tmp_path)
        stranger = SpanTracer(run_id="q" * 12, spool_dir=tmp_path)
        with stranger.span("other-run"):
            pass
        stranger.ship_shard()
        assert parent.collect_shards() == []

    def test_unreadable_shard_is_skipped(self, tmp_path):
        parent = SpanTracer(run_id="r" * 12, spool_dir=tmp_path)
        bad = tmp_path / f"shard-{parent.run_id}-123-0001.json"
        bad.write_text("{not json")
        assert parent.collect_shards() == []

    def test_finalize_writes_loadable_json(self, tmp_path):
        parent = SpanTracer(run_id="s" * 12, spool_dir=tmp_path)
        with parent.span("work"):
            pass
        out = tmp_path / "out" / "trace.json"
        doc = parent.finalize(out)
        assert json.loads(out.read_text()) == doc
