"""Inspector: schema validation plus golden-pinned terminal reports."""

import json

import pytest

from repro.metrics.registry import MetricsRegistry
from repro.obs import inspect as inspect_module
from repro.obs.tracer import TRACE_SCHEMA, SpanTracer


def _trace_doc() -> dict:
    return {
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "run_id": "cafe01234567"},
        "traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 1000, "tid": 0,
             "args": {"name": "repro"}},
            {"ph": "X", "name": "machine.sim_loop", "cat": "engine", "ts": 10.0,
             "dur": 5000.0, "pid": 1000, "tid": 1, "args": {"span": "1000:1"}},
            {"ph": "X", "name": "os_tick", "cat": "os", "ts": 20.0, "dur": 400.0,
             "pid": 1000, "tid": 1, "args": {"span": "1000:2", "parent": "1000:1"}},
            {"ph": "X", "name": "quantum", "cat": "engine", "ts": 500.0,
             "dur": 1800.5, "pid": 1000, "tid": 10,
             "args": {"span": "1000:3", "parent": "1000:1"}},
            {"ph": "i", "s": "t", "name": "pcc_state", "cat": "snapshot",
             "ts": 25.0, "pid": 1000, "tid": 1,
             "args": {"top_regions": [[1, 22, 240], [1, 23, 150]],
                      "tlb": {"L1-4K": 64}}},
            {"ph": "i", "s": "t", "name": "pcc_state", "cat": "snapshot",
             "ts": 425.0, "pid": 1000, "tid": 1,
             "args": {"top_regions": [[1, 23, 255], [2, 7, 90]],
                      "tlb": {"L1-4K": 64}}},
        ],
    }


def _metrics_doc() -> dict:
    registry = MetricsRegistry()
    walk = registry.histogram("walk_latency_cycles", unit="cycles")
    walk.record_many([44.0] * 10 + [60.0] * 5 + [120.0])
    tick = registry.histogram("tick_duration_us", unit="us")
    tick.record_many([100.0, 200.0, 400.0])
    export = registry.export(meta={"policy": "pcc", "run_id": "cafe01234567"})
    return {"schema": "repro.metrics/v1", "run_id": "cafe01234567",
            "runs": [export]}


TRACE_GOLDEN = """\
trace  run cafe01234567  6 events, 3 spans, 1 process(es)
span census (count, total, max):
  machine.sim_loop         x1      total     5.00ms  max     5.00ms
  os_tick                  x1      total    400.0us  max    400.0us
  quantum                  x1      total     1.80ms  max     1.80ms
slowest spans:
   1. machine.sim_loop             5.00ms  at 10.0us (pid 1000, main)
   2. quantum                      1.80ms  at 500.0us (pid 1000, core-0)
   3. os_tick                     400.0us  at 20.0us (pid 1000, main)
hottest regions (peak PCC frequency):
  pid 1 region 0x17  freq 255
  pid 1 region 0x16  freq 240
  pid 2 region 0x7  freq 90"""

METRICS_GOLDEN = """\
metrics  run cafe01234567  1 run(s)
distributions:
  tick_duration_us: n=3 mean=233.3 p50=197.4 p95=197.4 p99=197.4 \
(min 100.0, max 400.0 us)
  walk_latency_cycles: n=16 mean=53.8 p50=44.9 p95=63.2 p99=63.8 \
(min 44.0, max 120.0 cycles)"""


class TestTraceValidation:
    def test_well_formed_trace_passes(self):
        assert inspect_module.validate_trace(_trace_doc()) == []

    def test_tracer_export_passes(self, tmp_path):
        tracer = SpanTracer(run_id="v" * 12, spool_dir=tmp_path)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.instant("pcc_state", cat="snapshot", top_regions=[], tlb={})
        tracer.flow_start("1:1")
        tracer.flow_end("1:1")
        assert inspect_module.validate_trace(tracer.export()) == []

    def test_wrong_schema_flagged(self):
        doc = _trace_doc()
        doc["otherData"]["schema"] = "something/else"
        assert any("schema" in e for e in inspect_module.validate_trace(doc))

    def test_missing_run_id_flagged(self):
        doc = _trace_doc()
        del doc["otherData"]["run_id"]
        assert any("run_id" in e for e in inspect_module.validate_trace(doc))

    def test_complete_event_without_dur_flagged(self):
        doc = _trace_doc()
        del doc["traceEvents"][1]["dur"]
        assert any("dur" in e for e in inspect_module.validate_trace(doc))

    def test_unknown_phase_flagged(self):
        doc = _trace_doc()
        doc["traceEvents"].append({"ph": "Z", "name": "?", "pid": 1, "ts": 0})
        assert any("phase" in e for e in inspect_module.validate_trace(doc))

    def test_span_id_required_in_args(self):
        doc = _trace_doc()
        doc["traceEvents"][1]["args"] = {}
        assert any("args.span" in e for e in inspect_module.validate_trace(doc))


class TestMetricsValidation:
    def test_aggregate_passes(self):
        assert inspect_module.validate_metrics(_metrics_doc()) == []

    def test_single_run_export_passes(self):
        export = MetricsRegistry().export(meta={"policy": "pcc"})
        assert inspect_module.validate_metrics(export) == []

    def test_missing_counters_flagged(self):
        doc = _metrics_doc()
        del doc["runs"][0]["counters"]
        assert any("counters" in e for e in inspect_module.validate_metrics(doc))

    def test_distribution_missing_buckets_flagged(self):
        doc = _metrics_doc()
        del doc["runs"][0]["distributions"]["walk_latency_cycles"]["buckets"]
        errors = inspect_module.validate_metrics(doc)
        assert any("buckets" in e for e in errors)


class TestGoldenReports:
    def test_trace_report_is_golden(self):
        summary = inspect_module.summarize_trace(_trace_doc(), top=3)
        assert inspect_module.render(summary) == TRACE_GOLDEN

    def test_metrics_report_is_golden(self):
        summary = inspect_module.summarize_metrics(_metrics_doc())
        assert inspect_module.render(summary) == METRICS_GOLDEN

    def test_unobserved_metrics_report_says_so(self):
        export = MetricsRegistry().export(meta={"run_id": "x" * 12})
        text = inspect_module.render(inspect_module.summarize_metrics(export))
        assert "none recorded" in text

    def test_hot_regions_take_peak_frequency_across_snapshots(self):
        summary = inspect_module.summarize_trace(_trace_doc())
        assert summary["hot_regions"][0] == [1, 23, 255]

    def test_distributions_merge_across_runs(self):
        doc = _metrics_doc()
        doc["runs"].append(json.loads(json.dumps(doc["runs"][0])))
        summary = inspect_module.summarize_metrics(doc)
        assert summary["runs"] == 2
        assert summary["distributions"]["walk_latency_cycles"]["count"] == 32


class TestFileEntryPoints:
    def test_inspect_file_dispatches_by_shape(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        trace_path.write_text(json.dumps(_trace_doc()))
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(json.dumps(_metrics_doc()))
        assert inspect_module.inspect_file(trace_path)["kind"] == "trace"
        assert inspect_module.inspect_file(metrics_path)["kind"] == "metrics"

    def test_non_json_input_raises_value_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not JSON"):
            inspect_module.load_document(path)

    def test_cli_inspect_check_golden(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(_metrics_doc()))
        assert main(["inspect", str(path), "--check"]) == 0
        out = capsys.readouterr().out
        assert f"inspect: {path}: schema OK" in out
        assert METRICS_GOLDEN in out

    def test_cli_inspect_check_fails_on_violation(self, tmp_path, capsys):
        from repro.cli import main

        doc = _metrics_doc()
        del doc["runs"][0]["counters"]
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(doc))
        assert main(["inspect", str(path), "--check"]) == 1
        assert "schema violation" in capsys.readouterr().err
