"""Windowed aggregation: rate differencing, windowed histograms, and
the edge cases the satellite pins (empty window, single-bucket window,
rollover mid-merge)."""

import pytest

from repro.metrics.registry import MetricsRegistry
from repro.obs.window import WINDOWS, DEFAULT_RESOLUTION_S, WindowedAggregator


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def rig():
    registry = MetricsRegistry()
    clock = FakeClock()
    aggregator = WindowedAggregator(registry=registry, clock=clock)
    return registry, clock, aggregator


class TestRates:
    def test_empty_window_has_no_rates(self, rig):
        _, _, aggregator = rig
        assert aggregator.rates("10s") == {}

    def test_single_sample_is_not_a_rate(self, rig):
        registry, _, aggregator = rig
        registry.counter("serve.requests").add(5)
        aggregator.tick()
        assert aggregator.rates("10s") == {}

    def test_rate_is_delta_over_dt(self, rig):
        registry, clock, aggregator = rig
        aggregator.tick()
        registry.counter("serve.requests").add(30)
        clock.advance(10.0)
        aggregator.tick()
        assert aggregator.rates("10s")["serve.requests"] == pytest.approx(3.0)

    def test_windows_see_different_edges(self, rig):
        registry, clock, aggregator = rig
        aggregator.tick()
        for _ in range(30):  # 60s of 2/s
            registry.counter("x").add(4)
            clock.advance(2.0)
            aggregator.tick()
        registry.counter("x").add(100)  # burst in the last 2s
        clock.advance(2.0)
        aggregator.tick()
        assert aggregator.rates("10s")["x"] > aggregator.rates("1m")["x"]

    def test_counter_reset_clamps_to_zero(self, rig):
        registry, clock, aggregator = rig
        registry.counter("y").add(50)
        aggregator.tick()
        # a replaced registry snapshot going backwards must not yield a
        # negative rate
        aggregator._samples.append(
            (clock() + 10.0, {"y": 10}, {})
        )
        assert aggregator.rates("10s")["y"] == 0.0

    def test_unknown_window_raises(self, rig):
        _, _, aggregator = rig
        with pytest.raises(KeyError, match="unknown window"):
            aggregator.rates("3h")


class TestWindowedHistograms:
    def test_empty_window_yields_none(self, rig):
        registry, _, aggregator = rig
        registry.histogram("lat", unit="ms").record(5.0)
        assert aggregator.windowed_histogram("lat", "10s") is None
        assert aggregator.percentiles("lat", "10s") == {}

    def test_absent_histogram_yields_none(self, rig):
        _, clock, aggregator = rig
        aggregator.tick()
        clock.advance(2.0)
        aggregator.tick()
        assert aggregator.windowed_histogram("nope", "10s") is None

    def test_single_bucket_window(self, rig):
        registry, clock, aggregator = rig
        histogram = registry.histogram("lat", unit="ms")
        aggregator.tick()
        for _ in range(7):
            histogram.record(100.0)  # identical values: one bucket
        clock.advance(5.0)
        aggregator.tick()
        delta = aggregator.windowed_histogram("lat", "10s")
        assert delta.count == 7
        assert len(delta.counts) == 1
        assert delta.min <= 100.0 <= delta.max
        p = aggregator.percentiles("lat", "10s")
        # every percentile lands inside the one occupied bucket
        assert delta.min <= p["p50"] <= delta.max
        assert delta.min <= p["p99"] <= delta.max

    def test_window_excludes_older_samples(self, rig):
        registry, clock, aggregator = rig
        histogram = registry.histogram("lat", unit="ms")
        aggregator.tick()  # empty baseline
        histogram.record_many([1.0] * 50)  # old, outside the 10s window
        clock.advance(55.0)
        aggregator.tick()
        histogram.record_many([1000.0] * 5)  # inside the last 10s
        clock.advance(5.0)
        aggregator.tick()
        recent = aggregator.windowed_histogram("lat", "10s")
        assert recent.count == 5
        assert recent.min > 500.0
        full = aggregator.windowed_histogram("lat", "1m")
        assert full.count == 55

    def test_rollover_mid_merge(self, rig):
        """Samples recorded across several ticks merge exactly, and
        samples evicted past the 5m horizon drop out of every window."""
        registry, clock, aggregator = rig
        histogram = registry.histogram("lat", unit="ms")
        aggregator.tick()
        # batch 1 lands, then the window rolls while batch 2 lands
        histogram.record_many([10.0] * 4)
        clock.advance(4.0)
        aggregator.tick()
        histogram.record_many([20.0] * 6)
        clock.advance(4.0)
        aggregator.tick()
        merged = aggregator.windowed_histogram("lat", "10s")
        assert merged.count == 10  # both batches, counted once each
        assert merged.total == pytest.approx(4 * 10.0 + 6 * 20.0)
        # now roll far past the longest window: every old sample must
        # be evicted and the ring must not grow without bound
        for _ in range(200):
            clock.advance(5.0)
            aggregator.tick()
        span = max(WINDOWS.values()) + DEFAULT_RESOLUTION_S
        assert len(aggregator) <= span / 5.0 + 2
        late = aggregator.windowed_histogram("lat", "5m")
        assert late is None or late.count == 0


class TestSummary:
    def test_summary_shape(self, rig):
        registry, clock, aggregator = rig
        histogram = registry.histogram("lat", unit="ms")
        aggregator.tick()
        registry.counter("serve.requests").add(20)
        registry.counter("idle").add(0)
        histogram.record_many([5.0, 6.0, 7.0])
        clock.advance(10.0)
        aggregator.tick()
        doc = aggregator.summary(("10s", "1m"))
        assert set(doc) == {"10s", "1m"}
        assert doc["10s"]["rates"] == {"serve.requests": pytest.approx(2.0)}
        assert "idle" not in doc["10s"]["rates"]  # zero rates elided
        digest = doc["10s"]["histograms"]["lat"]
        assert digest["count"] == 3
        assert set(digest) >= {"count", "mean", "p50", "p95", "p99"}

    def test_summary_before_any_ticks(self, rig):
        _, _, aggregator = rig
        doc = aggregator.summary(("10s",))
        assert doc == {"10s": {"rates": {}, "histograms": {}}}
