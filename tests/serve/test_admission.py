"""Admission control: bounded queue, tenant quotas, fair dispatch."""

from dataclasses import dataclass

from repro.serve.admission import AdmissionController


@dataclass
class FakeJob:
    id: str
    tenant: str


def _job(index: int, tenant: str = "t") -> FakeJob:
    return FakeJob(id=f"j{index}", tenant=tenant)


class TestQueueLimit:
    def test_admits_until_the_global_limit(self):
        admission = AdmissionController(queue_limit=3, tenant_quota=10)
        for index in range(3):
            assert admission.try_admit(_job(index)).admitted
        decision = admission.try_admit(_job(99))
        assert not decision.admitted
        assert "queue full" in decision.reason
        assert decision.retry_after >= 1

    def test_draining_a_job_frees_capacity(self):
        admission = AdmissionController(queue_limit=1, tenant_quota=10)
        assert admission.try_admit(_job(0)).admitted
        assert not admission.try_admit(_job(1)).admitted
        assert admission.next_job().id == "j0"
        assert admission.try_admit(_job(1)).admitted

    def test_retry_after_scales_with_backlog(self):
        admission = AdmissionController(
            queue_limit=4, tenant_quota=10, expected_job_seconds=1.0
        )
        for index in range(4):
            admission.try_admit(_job(index))
        assert admission.try_admit(_job(9)).retry_after >= 4


class TestTenantQuota:
    def test_one_tenant_cannot_fill_the_queue(self):
        admission = AdmissionController(queue_limit=100, tenant_quota=2)
        assert admission.try_admit(_job(0, "noisy")).admitted
        assert admission.try_admit(_job(1, "noisy")).admitted
        decision = admission.try_admit(_job(2, "noisy"))
        assert not decision.admitted
        assert "quota" in decision.reason
        # other tenants are unaffected
        assert admission.try_admit(_job(3, "polite")).admitted

    def test_requeue_bypasses_the_quota(self):
        """Recovered jobs were already admitted once; never drop them."""
        admission = AdmissionController(queue_limit=100, tenant_quota=1)
        assert admission.try_admit(_job(0, "t")).admitted
        recovered = _job(1, "t")
        admission.requeue(recovered)  # over quota, still enters
        assert admission.depth == 2
        # requeued jobs go to the front of their tenant's backlog
        assert admission.next_job().id == "j1"


class TestFairDispatch:
    def test_round_robin_across_tenants(self):
        admission = AdmissionController()
        for index in range(3):
            admission.try_admit(_job(index, "a"))
        admission.try_admit(_job(10, "b"))
        admission.try_admit(_job(20, "c"))
        order = [admission.next_job().tenant for _ in range(5)]
        # a's deep backlog cannot starve b and c
        assert order[:3] in (["a", "b", "c"], ["b", "c", "a"],
                             ["c", "a", "b"])
        assert order.count("a") == 3

    def test_empty_queue_returns_none(self):
        admission = AdmissionController()
        assert admission.next_job() is None
        admission.try_admit(_job(0))
        assert admission.next_job().id == "j0"
        assert admission.next_job() is None
        assert admission.depth == 0

    def test_tenants_snapshot(self):
        admission = AdmissionController()
        admission.try_admit(_job(0, "a"))
        admission.try_admit(_job(1, "a"))
        admission.try_admit(_job(2, "b"))
        assert admission.tenants() == {"a": 2, "b": 1}
