"""Prometheus exposition: renderer/parser unit contract plus the live
``/metrics`` endpoint and its deprecated ``/v1/metrics`` JSON alias."""

import http.client
import math

import pytest

from repro.metrics.prometheus import metric_name, parse_exposition, render
from repro.obs.histo import Histogram

from .conftest import small_job


class TestRender:
    def test_counters_get_total_suffix_and_type(self):
        text = render(counters={"serve.requests": 7})
        families = parse_exposition(text)
        family = families["repro_serve_requests_total"]
        assert family["type"] == "counter"
        assert family["samples"] == [("repro_serve_requests_total", {}, 7.0)]

    def test_metric_name_mapping(self):
        assert metric_name("serve.sse.streams") == "repro_serve_sse_streams"
        assert metric_name("weird-name.x") == "repro_weird_name_x"

    def test_labeled_gauges(self):
        text = render(gauges={
            "serve.breaker_state": [
                ({"state": "closed"}, 1), ({"state": "open"}, 0),
            ],
            "serve.queue_depth": 3,
        })
        families = parse_exposition(text)
        samples = families["repro_serve_breaker_state"]["samples"]
        assert (("repro_serve_breaker_state", {"state": "closed"}, 1.0)
                in samples)
        assert families["repro_serve_queue_depth"]["samples"][0][2] == 3.0

    def test_rates_become_windowed_gauges(self):
        text = render(rates={"10s": {"serve.requests": 2.5},
                             "1m": {"serve.requests": 1.25}})
        families = parse_exposition(text)
        samples = families["repro_serve_requests_per_second"]["samples"]
        windows = {labels["window"]: value for _, labels, value in samples}
        assert windows == {"10s": 2.5, "1m": 1.25}

    def test_histogram_native_buckets(self):
        histogram = Histogram("walk_latency", unit="cycles")
        histogram.record_many([-1.0, 3.0, 50.0, 50.0, 4000.0])
        text = render(histograms={"walk_latency": histogram})
        families = parse_exposition(text)
        family = families["repro_walk_latency"]
        assert family["type"] == "histogram"
        buckets = [(labels["le"], value) for name, labels, value
                   in family["samples"] if name.endswith("_bucket")]
        assert buckets[0][0] == "0"  # underflow bucket maps to le="0"
        assert buckets[-1] == ("+Inf", 5.0)
        values = [value for _, value in buckets]
        assert values == sorted(values)  # cumulative
        count = [value for name, _, value in family["samples"]
                 if name.endswith("_count")][0]
        assert count == 5.0

    def test_info_gauge(self):
        text = render(info={"run_id": "abc123"})
        families = parse_exposition(text)
        name, labels, value = families["repro_serve_info"]["samples"][0]
        assert labels == {"run_id": "abc123"} and value == 1.0

    def test_label_escaping_round_trips(self):
        text = render(gauges={
            "g": [({"tenant": 'we"ird\\ten\nant'}, 1)],
        })
        families = parse_exposition(text)
        _, labels, _ = families["repro_g"]["samples"][0]
        assert labels["tenant"] == 'we"ird\\ten\nant'

    def test_special_values(self):
        text = render(gauges={"a": math.inf, "b": math.nan})
        families = parse_exposition(text)
        assert families["repro_a"]["samples"][0][2] == math.inf
        assert math.isnan(families["repro_b"]["samples"][0][2])


class TestParserStrictness:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_exposition("orphan_metric 1\n")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_exposition(
                "# TYPE x gauge\nx notanumber\n")

    def test_malformed_labels_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            parse_exposition(
                '# TYPE x gauge\nx{key=unquoted} 1\n')

    def test_histogram_without_inf_bucket_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="10"} 1\n'
            "h_sum 5\nh_count 1\n"
        )
        with pytest.raises(ValueError, match="\\+Inf"):
            parse_exposition(text)

    def test_histogram_decreasing_buckets_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="10"} 5\n'
            'h_bucket{le="20"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 5\nh_count 5\n"
        )
        with pytest.raises(ValueError, match="decrease"):
            parse_exposition(text)

    def test_histogram_count_mismatch_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 5\nh_count 4\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_exposition(text)


class TestLiveEndpoints:
    def _scrape(self, port: int) -> tuple[int, str, dict]:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            return (response.status,
                    response.read().decode(),
                    dict(response.getheaders()))
        finally:
            conn.close()

    def test_metrics_exposition_parses_with_buckets(self, serve_factory):
        handle = serve_factory()
        handle.request("POST", "/v1/jobs", small_job("prom-1"))
        handle.wait_for_state("prom-1")
        status, text, headers = self._scrape(handle.port)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        families = parse_exposition(text)
        assert "repro_serve_info" in families
        gauges = {name for name, family in families.items()
                  if family["type"] == "gauge"}
        assert "repro_serve_queue_depth" in gauges
        assert "repro_serve_breaker_state" in gauges
        histograms = [name for name, family in families.items()
                      if family["type"] == "histogram"]
        assert histograms, "no native _bucket families exposed"
        counters = {name for name, family in families.items()
                    if family["type"] == "counter"}
        assert any(name.startswith("repro_engine_") for name in counters)

    def test_v1_metrics_is_documented_deprecated_alias(self, serve_factory):
        handle = serve_factory()
        handle.request("POST", "/v1/jobs", small_job("prom-2"))
        handle.wait_for_state("prom-2")
        status, doc, _ = handle.request("GET", "/v1/metrics")
        assert status == 200
        assert doc["run_id"]
        assert "deprecated" in doc and "/metrics" in doc["deprecated"]
        assert any(key.startswith("engine.tier.")
                   for key in doc["engine_tiers"])
        assert set(doc["rates"]) == {"10s", "1m", "5m"}
