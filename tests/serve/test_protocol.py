"""Wire-format validation: strict 400s in, structured envelopes out."""

import pytest

from repro.serve.protocol import (
    MAX_GRAPH_SCALE,
    MAX_RUNS_PER_JOB,
    SERVE_SCHEMA,
    JobRequest,
    RequestError,
    envelope,
)


def _payload(**overrides) -> dict:
    payload = {
        "id": "job-1",
        "tenant": "acme",
        "runs": [{"app": "BFS", "policy": "pcc"}],
    }
    payload.update(overrides)
    return payload


class TestValidation:
    def test_minimal_payload_validates(self):
        request = JobRequest.from_payload(_payload())
        assert request.id == "job-1"
        assert request.tenant == "acme"
        assert request.runs[0]["app"] == "BFS"
        # defaults keep service jobs small
        assert request.runs[0]["graph_scale"] == 10
        assert request.runs[0]["proxy_accesses"] == 20_000

    def test_id_is_generated_when_absent(self):
        payload = _payload()
        del payload["id"]
        request = JobRequest.from_payload(payload)
        assert request.id.startswith("job-")

    @pytest.mark.parametrize(
        "mutation",
        [
            {"id": "has spaces"},
            {"id": "-leading-dash"},
            {"tenant": "x" * 40},
            {"deadline_s": -1},
            {"deadline_s": "soon"},
            {"jobs": 0},
            {"runs": []},
            {"runs": "BFS"},
            {"runs": [{"policy": "pcc"}]},  # no app
            {"runs": [{"app": "BFS", "policy": "made-up"}]},
            {"runs": [{"app": "BFS", "warp_speed": True}]},
            {"runs": [{"app": "BFS", "graph_scale": MAX_GRAPH_SCALE + 1}]},
            {"runs": [{"app": "BFS", "fragmentation": 1.5}]},
        ],
    )
    def test_bad_payloads_raise(self, mutation):
        with pytest.raises(RequestError):
            JobRequest.from_payload(_payload(**mutation))

    def test_non_object_body_raises(self):
        with pytest.raises(RequestError):
            JobRequest.from_payload([1, 2, 3])

    def test_runs_cap_is_enforced(self):
        runs = [{"app": "BFS"}] * (MAX_RUNS_PER_JOB + 1)
        with pytest.raises(RequestError, match="capped"):
            JobRequest.from_payload(_payload(runs=runs))


class TestSpecs:
    def test_runs_become_runspecs_with_tier(self):
        request = JobRequest.from_payload(_payload())
        specs = request.to_specs(engine_tier="scalar")
        assert specs[0].app == "BFS"
        assert specs[0].policy == "pcc"
        assert specs[0].engine_tier == "scalar"
        # default tier is the engine default
        assert request.to_specs()[0].engine_tier is None

    def test_distinct_tiers_have_distinct_journal_keys(self):
        """A degraded rerun must never alias a full-tier checkpoint."""
        from repro.experiments.common import execute_spec
        from repro.resilience.journal import RunJournal

        request = JobRequest.from_payload(_payload())
        journal = RunJournal("/tmp/unused")
        keys = {
            journal.key_for(execute_spec, spec)
            for tier in (None, "fast", "scalar")
            for spec in request.to_specs(engine_tier=tier)
        }
        assert len(keys) == 3


class TestEnvelope:
    def test_envelope_shape(self):
        from repro.serve.lifecycle import Job

        request = JobRequest.from_payload(_payload())
        job = Job.from_request(request)
        doc = envelope(job)
        assert doc["schema"] == SERVE_SCHEMA
        assert doc["job"]["id"] == "job-1"
        assert doc["job"]["state"] == "queued"
        assert doc["degraded"] == []
        assert doc["result"] is None
        assert doc["error"] is None
