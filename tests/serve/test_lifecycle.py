"""Job lifecycle: durable records, recovery split, tier-ladder execution."""

import pytest

from repro.resilience.journal import RunJournal
from repro.resilience.retry import RetryPolicy
from repro.serve.lifecycle import (
    DONE,
    QUEUED,
    RUNNING,
    Job,
    JobDeadlineExceeded,
    JobExecutionError,
    JobStore,
    deadline_policy,
    execute_job,
    now_ms,
)
from repro.serve.protocol import JobRequest

#: No backoff, no waiting — unit tests should not sleep.
FAST = RetryPolicy(max_attempts=1, backoff_base=0.0, jitter=0.0)


def _request(job_id="j1", **run_overrides) -> JobRequest:
    run = {"app": "BFS", "policy": "pcc", "graph_scale": 8,
           "proxy_accesses": 2000}
    run.update(run_overrides)
    return JobRequest.from_payload(
        {"id": job_id, "tenant": "t", "runs": [run]}
    )


class TestJobStore:
    def test_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job.from_request(_request())
        store.save(job)
        loaded = store.load("j1")
        assert loaded.id == "j1"
        assert loaded.state == QUEUED
        assert loaded.payload == job.payload

    def test_transitions_rewrite_the_same_shard(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job.from_request(_request())
        store.save(job)
        job.state = RUNNING
        store.save(job)
        assert store.load("j1").state == RUNNING
        assert len(store.journal) == 1

    def test_recover_splits_on_terminal_state(self, tmp_path):
        store = JobStore(tmp_path)
        open_job = Job.from_request(_request("open"))
        done_job = Job.from_request(_request("closed"))
        done_job.state = DONE
        store.save(open_job)
        store.save(done_job)
        unfinished, finished = store.recover()
        assert [job.id for job in unfinished] == ["open"]
        assert [job.id for job in finished] == ["closed"]

    def test_recover_orders_by_submission_time(self, tmp_path):
        store = JobStore(tmp_path)
        late = Job.from_request(_request("late"))
        late.submitted_ms = now_ms() + 1000
        early = Job.from_request(_request("early"))
        store.save(late)
        store.save(early)
        unfinished, _ = store.recover()
        assert [job.id for job in unfinished] == ["early", "late"]

    def test_recover_skips_foreign_journal_keys(self, tmp_path):
        store = JobStore(tmp_path)
        store.journal.commit("not-a-job-key", {"some": "result"})
        store.save(Job.from_request(_request()))
        unfinished, finished = store.recover()
        assert len(unfinished) == 1 and not finished


class TestDeadlinePolicy:
    def test_no_deadline_keeps_the_base(self):
        assert deadline_policy(FAST, None) is FAST

    def test_deadline_becomes_the_timeout_ceiling(self):
        policy = deadline_policy(FAST, 2.5)
        assert policy.timeout == 2.5

    def test_shorter_existing_timeout_wins(self):
        base = RetryPolicy(max_attempts=1, timeout=1.0)
        assert deadline_policy(base, 30.0).timeout == 1.0

    def test_floor_guards_against_negative_remnants(self):
        assert deadline_policy(FAST, 0.001).timeout == pytest.approx(0.1)


class TestExecuteJob:
    def test_clean_execution_returns_summaries(self, tmp_path):
        job = Job.from_request(_request())
        summaries, degraded, report = execute_job(
            job, RunJournal(tmp_path / "results"), retry_policy=FAST
        )
        assert degraded == [] and report is None
        assert summaries[0]["policy"] == "pcc"
        assert summaries[0]["total_cycles"] > 0

    def test_results_dedupe_through_the_journal(self, tmp_path):
        journal = RunJournal(tmp_path / "results")
        first, _, _ = execute_job(
            Job.from_request(_request("a")), journal, retry_policy=FAST
        )
        commits = journal.stats.commits
        # a different job asking the same question replays the shard
        second, _, _ = execute_job(
            Job.from_request(_request("b")), journal, retry_policy=FAST
        )
        assert second == first
        assert journal.stats.commits == commits
        assert journal.stats.resumed >= 1

    def test_engine_failure_degrades_down_the_ladder(self, tmp_path):
        """A columnar-tier blowup yields a degraded answer, not a 500."""
        from repro.resilience.faults import injecting

        job = Job.from_request(_request())
        with injecting("exc@engine.columnar.encode",
                       state_dir=tmp_path / "faults"):
            summaries, degraded, report = execute_job(
                job, RunJournal(tmp_path / "results"), retry_policy=FAST
            )
        assert degraded == ["tier:fast"]
        assert summaries[0]["total_cycles"] > 0

    def test_degraded_results_stay_bit_identical(self, tmp_path):
        """The tier ladder's whole premise: slower answer, same answer."""
        from repro.resilience.faults import injecting

        clean, _, _ = execute_job(
            Job.from_request(_request("clean")),
            RunJournal(tmp_path / "r1"), retry_policy=FAST,
        )
        with injecting("exc@engine.columnar.encode",
                       state_dir=tmp_path / "faults"):
            degraded_result, degraded, _ = execute_job(
                Job.from_request(_request("hurt")),
                RunJournal(tmp_path / "r2"), retry_policy=FAST,
            )
        assert degraded == ["tier:fast"]
        assert degraded_result == clean

    def test_failure_on_every_rung_raises(self, tmp_path):
        job = Job.from_request(_request(app="no-such-app"))
        with pytest.raises(JobExecutionError) as excinfo:
            execute_job(job, RunJournal(tmp_path / "results"),
                        retry_policy=FAST)
        # every fallback the ladder tried is recorded on the error
        assert excinfo.value.degraded == ["tier:fast", "tier:scalar"]

    def test_expired_deadline_raises_deadline_error(self, tmp_path):
        job = Job.from_request(_request())
        job.payload["deadline_s"] = 0.001
        job.submitted_ms = now_ms() - 10_000
        with pytest.raises(JobDeadlineExceeded):
            execute_job(job, RunJournal(tmp_path / "results"),
                        retry_policy=FAST)
