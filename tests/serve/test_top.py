"""``repro top`` / ``repro progress``: pure renderers plus the live
clients against a thread-hosted server."""

import io

from repro.serve.top import (
    progress_bar,
    render_dashboard,
    render_progress_line,
    run_progress,
    run_top,
    split_url,
)

from .conftest import small_job


class TestHelpers:
    def test_split_url_accepts_bare_and_scheme_forms(self):
        assert split_url("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert split_url("http://10.0.0.2:8023") == ("10.0.0.2", 8023)
        assert split_url("localhost") == ("localhost", 8023)

    def test_progress_bar_shapes(self):
        assert progress_bar(0.0, width=10) == "[..........]   0.0%"
        assert progress_bar(50.0, width=10) == "[#####.....]  50.0%"
        assert progress_bar(100.0, width=10) == "[##########] 100.0%"
        assert progress_bar(150.0, width=10).endswith("100.0%")  # clamped
        assert "?" in progress_bar(None, width=10)


class TestRenderDashboard:
    def _docs(self):
        registry = {
            "jobs": 3,
            "queue_depth": 1,
            "states": {"done": 2, "running": 1},
            "tenants": {"acme": 1},
            "running_detail": [{
                "id": "job-42",
                "progress": {"pct": 40.0, "tier": "columnar",
                             "rate_rps": 2_000_000.0, "eta_s": 3.0,
                             "seq": 9},
            }],
        }
        metrics = {
            "run_id": "feedface0123",
            "running": 1,
            "breaker": {"state": "closed", "trips": 0},
            "engine_tiers": {"engine.tier.columnar.jobs": 2},
            "rates": {"1m": {"resilience.serve.requests": 0.5}},
        }
        return registry, metrics

    def test_plain_frame_has_every_section(self):
        registry, metrics = self._docs()
        frame = render_dashboard(registry, metrics, ansi=False)
        assert "\x1b[" not in frame
        assert "run feedface0123" in frame
        assert "queue 1" in frame
        assert "breaker closed" in frame
        assert "job-42" in frame and "40.0%" in frame
        assert "columnar" in frame and "2.00M rec/s" in frame
        assert "eta 3s" in frame
        assert "columnar:2" in frame  # tier occupancy
        assert "requests:0.5/s" in frame
        assert "tenant backlog: acme:1" in frame

    def test_ansi_frame_colors_states(self):
        registry, metrics = self._docs()
        frame = render_dashboard(registry, metrics, ansi=True)
        assert "\x1b[32mclosed\x1b[0m" in frame

    def test_idle_dashboard(self):
        frame = render_dashboard({}, {}, ansi=False)
        assert "(idle)" in frame


class TestRenderProgressLine:
    def test_progress_line(self):
        line = render_progress_line({"event": "progress", "data": {
            "records_done": 500, "records_total": 1000, "tier": "fast",
            "rate_rps": 1_500_000.0, "eta_s": 2.0}}, ansi=False)
        assert "50.0%" in line and "fast" in line
        assert "1.50M rec/s" in line and "eta 2s" in line

    def test_state_and_degraded_lines(self):
        assert render_progress_line(
            {"event": "state", "data": {"state": "done"}}, ansi=False,
        ) == "-- done"
        failed = render_progress_line(
            {"event": "state",
             "data": {"state": "failed", "error": "boom"}}, ansi=False)
        assert "failed" in failed and "boom" in failed
        degraded = render_progress_line(
            {"event": "degraded", "data": {"tags": ["tier:fast"]}})
        assert "tier:fast" in degraded


class TestLiveClients:
    def test_run_top_once_renders_a_live_server(self, serve_factory):
        handle = serve_factory()
        handle.request("POST", "/v1/jobs", small_job("top-1"))
        handle.wait_for_state("top-1")
        out = io.StringIO()
        assert run_top(f"127.0.0.1:{handle.port}", once=True, out=out) == 0
        frame = out.getvalue()
        assert "repro top" in frame
        assert "\x1b[" not in frame  # --once means no ANSI
        assert "columnar:" in frame  # the job landed in tier occupancy

    def test_run_top_against_down_server_fails_cleanly(self):
        out = io.StringIO()
        assert run_top("127.0.0.1:1", once=True, out=out) == 1

    def test_run_progress_tails_to_done(self, serve_factory):
        handle = serve_factory()
        handle.request("POST", "/v1/jobs", small_job("top-2"))
        out = io.StringIO()
        rc = run_progress("top-2", f"127.0.0.1:{handle.port}", out=out,
                          timeout_s=60)
        assert rc == 0
        text = out.getvalue()
        assert "-- queued" in text
        assert "-- running" in text
        assert "rec/s" in text  # at least one progress bar line
        assert text.rstrip().endswith("-- done")

    def test_run_progress_unknown_job_is_an_error(self, serve_factory):
        handle = serve_factory()
        out = io.StringIO()
        assert run_progress("ghost", f"127.0.0.1:{handle.port}", out=out,
                            timeout_s=10) == 1

    def test_cli_entry_points_dispatch(self, serve_factory, capsys):
        from repro.cli import main

        handle = serve_factory()
        handle.request("POST", "/v1/jobs", small_job("top-3"))
        handle.wait_for_state("top-3")
        assert main(["progress", "top-3",
                     "--server", f"127.0.0.1:{handle.port}"]) == 0
        assert "-- done" in capsys.readouterr().out
        assert main(["top", f"127.0.0.1:{handle.port}", "--once"]) == 0
        assert "repro top" in capsys.readouterr().out
