"""Thread-hosted server harness for the serve e2e tests."""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.serve.server import ServeConfig, SimulationServer


class ServerHandle:
    """One running server plus a tiny blocking HTTP/JSON client."""

    def __init__(self, server: SimulationServer, loop, thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    def request(self, method: str, path: str, body=None, timeout=30):
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=timeout)
        try:
            conn.request(
                method, path,
                body=json.dumps(body) if body is not None else None,
            )
            response = conn.getresponse()
            doc = json.loads(response.read() or b"null")
            return response.status, doc, dict(response.getheaders())
        finally:
            conn.close()

    def wait_for_state(self, job_id: str, states=("done", "failed",
                                                  "expired"), timeout=60):
        deadline = time.time() + timeout
        while time.time() < deadline:
            status, doc, _ = self.request("GET", f"/v1/jobs/{job_id}")
            if status == 200 and doc["job"]["state"] in states:
                return doc
            time.sleep(0.05)
        raise AssertionError(
            f"job {job_id} never reached {states}; last: {doc}"
        )

    def drain_and_join(self, timeout=30) -> None:
        if self.thread.is_alive():
            try:
                self.request("POST", "/v1/drain")
            except OSError:
                pass
            self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), "server failed to drain"

    def stop(self) -> None:
        """Best-effort shutdown for teardown paths."""
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.server.request_drain)
            self.thread.join(timeout=10)


@pytest.fixture
def serve_factory(tmp_path):
    """Start servers on free ports; everything is drained at teardown."""
    handles = []

    def start(**overrides) -> ServerHandle:
        overrides.setdefault("state_dir", tmp_path / "serve-state")
        overrides.setdefault("executors", 1)
        config = ServeConfig(port=0, **overrides)
        server = SimulationServer(config)
        loop = asyncio.new_event_loop()

        def body():
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(server.serve_forever())
            finally:
                loop.close()

        thread = threading.Thread(target=body, daemon=True)
        thread.start()
        deadline = time.time() + 30
        while server.port is None:
            if not thread.is_alive():
                raise AssertionError("server thread died during startup")
            if time.time() > deadline:
                raise AssertionError("server never bound a port")
            time.sleep(0.01)
        handle = ServerHandle(server, loop, thread)
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop()


def small_job(job_id: str, seed: int = 0, **extra) -> dict:
    payload = {
        "id": job_id,
        "tenant": "test",
        "runs": [{"app": "BFS", "policy": "pcc", "graph_scale": 8,
                  "proxy_accesses": 2000, "seed": seed}],
    }
    payload.update(extra)
    return payload
