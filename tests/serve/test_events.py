"""SSE plane: broker semantics, wire codecs, and the live streaming
protocol (Last-Event-ID reconnect, client disconnect mid-stream, drain
during an open stream)."""

import http.client
import io
import threading
import time

from repro.serve.events import (
    BROADCAST,
    EventBroker,
    format_comment,
    format_event,
    read_events,
)

from .conftest import small_job


class TestWireCodecs:
    def test_frame_round_trip(self):
        frames = (
            format_event(1, "state", {"state": "queued"})
            + format_comment()
            + format_event(2, "progress", {"records_done": 5})
        )
        events = list(read_events(io.BytesIO(frames)))
        assert [(e["id"], e["event"]) for e in events] == [
            (1, "state"), (2, "progress"),
        ]
        assert events[0]["data"] == {"state": "queued"}

    def test_reader_tolerates_crlf_and_unparseable_data(self):
        raw = b"id: 3\r\nevent: state\r\ndata: not-json\r\n\r\n"
        events = list(read_events(io.BytesIO(raw)))
        assert events[0]["id"] == 3
        assert events[0]["data"] == {"raw": "not-json"}


class TestBroker:
    def test_ids_are_per_channel_from_one(self):
        broker = EventBroker()
        broker.publish("a", "state", {"n": 1}, broadcast=False)
        broker.publish("b", "state", {"n": 1}, broadcast=False)
        broker.publish("a", "state", {"n": 2}, broadcast=False)
        assert [i for i, _, _ in broker.events("a")] == [1, 2]
        assert broker.last_id("b") == 1

    def test_broadcast_mirror_carries_channel(self):
        broker = EventBroker()
        broker.publish("job-1", "state", {"state": "queued"})
        mirrored = broker.events(BROADCAST)
        assert mirrored[0][2]["channel"] == "job-1"
        assert broker.last_id(BROADCAST) == 1

    def test_replay_honours_last_event_id(self):
        broker = EventBroker()
        for n in range(5):
            broker.publish("c", "progress", {"n": n}, broadcast=False)
        _, replay = broker.subscribe("c", last_event_id=3)
        assert [i for i, _, _ in replay] == [4, 5]
        _, full = broker.subscribe("c", last_event_id=None)
        assert len(full) == 5

    def test_ring_is_bounded(self):
        broker = EventBroker(history=4)
        for n in range(10):
            broker.publish("c", "progress", {"n": n}, broadcast=False)
        ring = broker.events("c")
        assert len(ring) == 4
        assert ring[0][0] == 7  # ids keep counting past evictions

    def test_unsubscribe_is_idempotent(self):
        broker = EventBroker()
        queue, _ = broker.subscribe("c")
        broker.unsubscribe("c", queue)
        broker.unsubscribe("c", queue)


def open_stream(port: int, path: str, last_event_id=None, timeout=30):
    """Open one SSE stream; returns (connection, response)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    headers = {}
    if last_event_id is not None:
        headers["Last-Event-ID"] = str(last_event_id)
    conn.request("GET", path, headers=headers)
    response = conn.getresponse()
    return conn, response


def collect_stream(port: int, path: str, out: list, last_event_id=None):
    """Thread body: append every event until the stream closes."""
    conn, response = open_stream(port, path, last_event_id)
    try:
        if response.status != 200:
            out.append({"event": "_http_error", "data": {
                "status": response.status}})
            return
        for event in read_events(response):
            out.append(event)
    except (OSError, http.client.HTTPException):
        pass
    finally:
        conn.close()


class TestLiveStreaming:
    def test_stream_carries_progress_then_terminal_state(self, serve_factory):
        handle = serve_factory()
        status, _, _ = handle.request(
            "POST", "/v1/jobs", small_job("sse-1"))
        assert status == 202
        events = []
        tailer = threading.Thread(
            target=collect_stream, args=(handle.port, "/v1/jobs/sse-1/events",
                                         events),
            daemon=True)
        tailer.start()
        tailer.join(timeout=60)
        assert not tailer.is_alive(), "stream never reached a terminal state"
        kinds = [e["event"] for e in events]
        assert kinds[0] == "state" and events[0]["data"]["state"] == "queued"
        assert "progress" in kinds
        assert events[-1]["event"] == "state"
        assert events[-1]["data"]["state"] == "done"
        # progress precedes the terminal event on the wire
        assert kinds.index("progress") < len(kinds) - 1
        ids = [e["id"] for e in events]
        assert ids == sorted(ids)

    def test_unknown_job_stream_is_404(self, serve_factory):
        handle = serve_factory()
        conn, response = open_stream(handle.port, "/v1/jobs/nope/events")
        try:
            assert response.status == 404
        finally:
            conn.close()

    def test_last_event_id_reconnect_resumes_after_gap(self, serve_factory):
        handle = serve_factory()
        handle.request("POST", "/v1/jobs", small_job("sse-2"))
        handle.wait_for_state("sse-2")
        first = []
        collect_stream(handle.port, "/v1/jobs/sse-2/events", first)
        assert len(first) >= 3  # queued, >=1 progress, done
        cut = first[1]["id"]
        resumed = []
        collect_stream(handle.port, "/v1/jobs/sse-2/events", resumed,
                       last_event_id=cut)
        assert [e["id"] for e in resumed] == [
            e["id"] for e in first if e["id"] > cut]
        assert resumed[-1]["data"]["state"] == "done"

    def test_reconnect_past_everything_still_gets_terminal_state(
            self, serve_factory):
        handle = serve_factory()
        handle.request("POST", "/v1/jobs", small_job("sse-3"))
        handle.wait_for_state("sse-3")
        full = []
        collect_stream(handle.port, "/v1/jobs/sse-3/events", full)
        last = full[-1]["id"]
        tail = []
        collect_stream(handle.port, "/v1/jobs/sse-3/events", tail,
                       last_event_id=last)
        # nothing new to replay, but the stream must still close with
        # the job's terminal state rather than hanging
        assert tail == [] or tail[-1]["data"]["state"] == "done"

    def test_client_disconnect_mid_stream_does_not_hurt_the_job(
            self, serve_factory):
        handle = serve_factory()
        handle.request("POST", "/v1/jobs", small_job("sse-4"))
        conn, response = open_stream(handle.port, "/v1/jobs/sse-4/events")
        # read one frame, then hang up mid-stream
        assert response.status == 200
        line = response.readline()
        assert line
        response.close()
        conn.close()
        doc = handle.wait_for_state("sse-4")
        assert doc["job"]["state"] == "done"
        # the server stays healthy for new streams after the rude close
        final = []
        collect_stream(handle.port, "/v1/jobs/sse-4/events", final)
        assert final[-1]["data"]["state"] == "done"

    def test_drain_during_open_stream_closes_it(self, serve_factory):
        handle = serve_factory()
        handle.request("POST", "/v1/jobs", small_job("sse-5"))
        handle.wait_for_state("sse-5")
        events = []
        # broadcast streams have no terminal event, so only drain (or
        # disconnect) can end them — the drain path under test
        tailer = threading.Thread(
            target=collect_stream, args=(handle.port, "/v1/events", events),
            daemon=True)
        tailer.start()
        deadline = time.time() + 30
        while not events and time.time() < deadline:
            time.sleep(0.05)  # replayed ring proves the stream is open
        assert events, "broadcast stream never delivered the ring"
        handle.drain_and_join()
        tailer.join(timeout=15)
        assert not tailer.is_alive(), "drain left the SSE stream open"

    def test_broadcast_stream_multiplexes_jobs(self, serve_factory):
        handle = serve_factory()
        events = []
        tailer = threading.Thread(
            target=collect_stream, args=(handle.port, "/v1/events", events),
            daemon=True)
        tailer.start()
        time.sleep(0.2)
        handle.request("POST", "/v1/jobs", small_job("mux-a"))
        handle.request("POST", "/v1/jobs", small_job("mux-b", seed=1))
        handle.wait_for_state("mux-a")
        handle.wait_for_state("mux-b")
        deadline = time.time() + 30
        while time.time() < deadline:
            done = {e["data"].get("channel") for e in list(events)
                    if e["event"] == "state"
                    and e["data"].get("state") == "done"}
            if {"mux-a", "mux-b"} <= done:
                break
            time.sleep(0.05)
        channels = {e["data"].get("channel") for e in list(events)}
        assert {"mux-a", "mux-b"} <= channels
