"""End-to-end serving: HTTP surface, lifecycle, recovery, degradation."""

import time

from repro.resilience.faults import injecting
from repro.serve.lifecycle import Job, JobStore
from repro.serve.protocol import JobRequest

from .conftest import small_job


class TestHttpSurface:
    def test_submit_poll_done(self, serve_factory):
        handle = serve_factory()
        status, doc, _ = handle.request("POST", "/v1/jobs",
                                        small_job("e2e-1"))
        assert status == 202
        assert doc["job"]["state"] == "queued"
        final = handle.wait_for_state("e2e-1")
        assert final["job"]["state"] == "done"
        assert final["degraded"] == []
        assert final["result"][0]["total_cycles"] > 0
        handle.drain_and_join()

    def test_resubmission_is_idempotent(self, serve_factory):
        handle = serve_factory()
        handle.request("POST", "/v1/jobs", small_job("dup-1"))
        final = handle.wait_for_state("dup-1")
        status, doc, _ = handle.request("POST", "/v1/jobs",
                                        small_job("dup-1"))
        assert status == 200  # known job: reported, never re-run
        assert doc["job"]["finished_ms"] == final["job"]["finished_ms"]

    def test_invalid_payload_is_a_400(self, serve_factory):
        handle = serve_factory()
        status, doc, _ = handle.request(
            "POST", "/v1/jobs", {"runs": [{"policy": "pcc"}]}
        )
        assert status == 400
        assert doc["error"]["type"] == "RequestError"
        status, doc, _ = handle.request("POST", "/v1/jobs", body=None)
        assert status == 400

    def test_unknown_job_is_a_404(self, serve_factory):
        handle = serve_factory()
        status, doc, _ = handle.request("GET", "/v1/jobs/nope")
        assert status == 404
        assert doc["error"]["type"] == "UnknownJob"

    def test_unknown_route_and_bad_method(self, serve_factory):
        handle = serve_factory()
        assert handle.request("GET", "/v2/other")[0] == 404
        assert handle.request("DELETE", "/v1/jobs")[0] == 405

    def test_health_ready_metrics(self, serve_factory):
        handle = serve_factory()
        status, doc, _ = handle.request("GET", "/healthz")
        assert status == 200 and doc["ok"]
        status, doc, _ = handle.request("GET", "/readyz")
        assert status == 200 and doc["ready"]
        assert doc["breaker"]["state"] == "closed"
        status, doc, _ = handle.request("GET", "/v1/metrics")
        assert status == 200
        assert "resilience.serve.accepted" in doc["counters"]


class TestBackpressure:
    def test_saturated_queue_is_a_429_with_retry_after(self, serve_factory):
        handle = serve_factory(queue_limit=0)
        status, doc, headers = handle.request("POST", "/v1/jobs",
                                              small_job("full-1"))
        assert status == 429
        assert doc["error"]["type"] == "Saturated"
        assert doc["retryable"] is True
        assert int(headers.get("Retry-After", "0")) >= 1

    def test_draining_server_refuses_new_work(self, serve_factory):
        handle = serve_factory()
        status, doc, _ = handle.request("POST", "/v1/drain")
        assert status == 200 and doc["draining"]
        # the drained server may exit between these requests; a refused
        # connection is the same statement as a 503
        try:
            status, doc, _ = handle.request("POST", "/v1/jobs",
                                            small_job("late-1"))
        except OSError:
            return
        assert status == 503
        assert doc["error"]["type"] == "Draining"


class TestDeadlines:
    def test_expired_job_is_expired_not_failed(self, serve_factory):
        handle = serve_factory()
        status, _, _ = handle.request(
            "POST", "/v1/jobs",
            small_job("dl-1", deadline_s=0.001),
        )
        assert status == 202
        final = handle.wait_for_state("dl-1")
        assert final["job"]["state"] == "expired"
        assert final["error"]["type"] == "DeadlineExceeded"


class TestRecovery:
    def test_journaled_jobs_resume_on_startup(self, serve_factory, tmp_path):
        """A queued record left by a dead server runs on the next boot."""
        state = tmp_path / "recovery-state"
        store = JobStore(state / "jobs")
        request = JobRequest.from_payload(small_job("orphan-1"))
        store.save(Job.from_request(request))
        handle = serve_factory(state_dir=state)
        final = handle.wait_for_state("orphan-1")
        assert final["job"]["state"] == "done"
        status, doc, _ = handle.request("GET", "/v1/metrics")
        assert doc["counters"]["resilience.serve.recovered"] >= 1

    def test_finished_jobs_survive_restart(self, serve_factory, tmp_path):
        state = tmp_path / "restart-state"
        first = serve_factory(state_dir=state)
        first.request("POST", "/v1/jobs", small_job("keep-1"))
        final = first.wait_for_state("keep-1")
        first.drain_and_join()
        second = serve_factory(state_dir=state)
        status, doc, _ = second.request("GET", "/v1/jobs/keep-1")
        assert status == 200
        assert doc["job"]["state"] == "done"
        assert doc["job"]["finished_ms"] == final["job"]["finished_ms"]


class TestDegradation:
    def test_accept_fault_is_a_structured_503(self, serve_factory, tmp_path):
        handle = serve_factory()
        with injecting("exc@serve.accept", state_dir=tmp_path / "faults"):
            status, doc, headers = handle.request(
                "POST", "/v1/jobs", small_job("flt-1")
            )
        assert status == 503
        assert doc["error"]["type"] == "InjectedFault"
        assert doc["retryable"] is True
        # the fault fired exactly once; the retry is accepted
        status, _, _ = handle.request("POST", "/v1/jobs", small_job("flt-1"))
        assert status == 202
        assert handle.wait_for_state("flt-1")["job"]["state"] == "done"

    def test_dispatch_fault_requeues_and_completes(self, serve_factory,
                                                   tmp_path):
        handle = serve_factory()
        with injecting("exc@serve.dispatch", state_dir=tmp_path / "faults"):
            handle.request("POST", "/v1/jobs", small_job("rq-1"))
            final = handle.wait_for_state("rq-1")
        assert final["job"]["state"] == "done"
        assert final["job"]["attempts"] >= 2
        status, doc, _ = handle.request("GET", "/v1/metrics")
        assert doc["counters"]["resilience.serve.requeued"] >= 1

    def test_publish_fault_requeues_and_replays_from_journal(
        self, serve_factory, tmp_path
    ):
        handle = serve_factory()
        with injecting("exc@serve.result.publish",
                       state_dir=tmp_path / "faults"):
            handle.request("POST", "/v1/jobs", small_job("pub-1"))
            final = handle.wait_for_state("pub-1")
        assert final["job"]["state"] == "done"
        assert final["job"]["attempts"] >= 2
        # the re-execution resumed the finished run from the results
        # journal instead of recomputing it
        assert handle.server.results_journal.stats.resumed >= 1

    def test_engine_fault_degrades_tier_in_the_envelope(
        self, serve_factory, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "1")
        handle = serve_factory()
        with injecting("exc@engine.columnar.encode",
                       state_dir=tmp_path / "faults"):
            handle.request("POST", "/v1/jobs", small_job("deg-1"))
            final = handle.wait_for_state("deg-1")
        assert final["job"]["state"] == "done"
        assert "tier:fast" in final["degraded"]
        assert final["result"][0]["total_cycles"] > 0

    def test_open_breaker_forces_serial_and_tags_the_job(
        self, serve_factory
    ):
        handle = serve_factory()
        # trip the breaker directly on the loop (unit seam), then show
        # a pooled request degrading to serial with the tag surfaced
        for _ in range(handle.server.breaker.trip_after):
            handle.server.breaker.record_failure()
        assert handle.server.breaker.state == "open"
        handle.request("POST", "/v1/jobs", small_job("ser-1", jobs=2))
        final = handle.wait_for_state("ser-1")
        assert final["job"]["state"] == "done"
        assert "serial-execution" in final["degraded"]


class TestDrain:
    def test_drain_finishes_backlog_then_exits(self, serve_factory):
        handle = serve_factory()
        for index in range(3):
            status, _, _ = handle.request(
                "POST", "/v1/jobs", small_job(f"dr-{index}", seed=index)
            )
            assert status == 202
        handle.request("POST", "/v1/drain")
        handle.thread.join(timeout=60)
        assert not handle.thread.is_alive()
        # every accepted job reached a terminal state before exit
        store = JobStore(handle.server.config.resolved_state_dir() / "jobs")
        unfinished, finished = store.recover()
        assert unfinished == []
        assert {job.id for job in finished} >= {"dr-0", "dr-1", "dr-2"}
        assert all(job.state == "done" for job in finished)
