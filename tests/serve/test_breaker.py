"""Circuit breaker: trip on repeated damage, cooldown, half-open probe."""

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _breaker(trip_after=3, cooldown_s=30.0):
    clock = FakeClock()
    return CircuitBreaker(trip_after=trip_after, cooldown_s=cooldown_s,
                          clock=clock), clock


class TestTripping:
    def test_stays_closed_below_threshold(self):
        breaker, _ = _breaker(trip_after=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow_pooled()

    def test_trips_at_threshold(self):
        breaker, _ = _breaker(trip_after=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow_pooled()
        assert breaker.trips == 1

    def test_success_resets_the_count(self):
        breaker, _ = _breaker(trip_after=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_quarantine_report_counts_as_damage(self):
        breaker, _ = _breaker(trip_after=1)
        breaker.record_report({"quarantined": [{"task": "x"}],
                               "pool_rebuilds": 0})
        assert breaker.state == OPEN

    def test_clean_report_counts_as_success(self):
        breaker, _ = _breaker(trip_after=2)
        breaker.record_failure()
        breaker.record_report({"quarantined": [], "pool_rebuilds": 0})
        assert breaker.consecutive_failures == 0


class TestRecovery:
    def test_cooldown_gates_the_half_open_probe(self):
        breaker, clock = _breaker(trip_after=1, cooldown_s=30.0)
        breaker.record_failure()
        assert not breaker.allow_pooled()
        clock.advance(29.0)
        assert not breaker.allow_pooled()
        clock.advance(2.0)
        # first caller after cooldown becomes the probe...
        assert breaker.allow_pooled()
        assert breaker.state == HALF_OPEN
        # ...and concurrent jobs stay serial until its outcome lands
        assert not breaker.allow_pooled()

    def test_probe_success_closes(self):
        breaker, clock = _breaker(trip_after=1, cooldown_s=1.0)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow_pooled()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow_pooled()

    def test_probe_failure_reopens(self):
        breaker, clock = _breaker(trip_after=1, cooldown_s=1.0)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow_pooled()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow_pooled()

    def test_snapshot_is_json_safe(self):
        import json

        breaker, _ = _breaker()
        breaker.record_failure()
        doc = breaker.snapshot()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["state"] == CLOSED
