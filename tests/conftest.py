"""Shared fixtures: tiny configurations and miniature workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PCCConfig, tiny_config
from repro.engine.system import ProcessWorkload
from repro.trace.events import Trace
from repro.trace.recorder import TraceRecorder
from repro.vm.layout import AddressSpaceLayout
from repro.workloads.graph import kronecker


@pytest.fixture(autouse=True)
def _no_stray_resilience_state(monkeypatch):
    """Keep tests hermetic: no run journal in $HOME, no ambient faults.

    Tests that exercise the journal or fault injection opt back in by
    setting REPRO_JOURNAL / REPRO_FAULTS themselves (monkeypatch wins
    over this fixture inside the test body).
    """
    monkeypatch.setenv("REPRO_JOURNAL", "off")
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULT_STATE", raising=False)


@pytest.fixture
def config():
    """Tiny system configuration for fast unit tests."""
    return tiny_config()


@pytest.fixture
def pcc_config():
    return PCCConfig(entries=4, giga_entries=2)


@pytest.fixture
def small_graph():
    """A small power-law graph shared by workload tests."""
    return kronecker(scale=8, degree=8, seed=3)


@pytest.fixture
def layout():
    return AddressSpaceLayout()


def make_workload(
    addresses: np.ndarray, name: str = "unit", footprint: int | None = None
) -> ProcessWorkload:
    """Wrap a raw address array in a single-thread process workload.

    A VMA covering the touched range is synthesized so kernel fault
    handling sees every access as THP-eligible.
    """
    addresses = np.asarray(addresses, dtype=np.uint64)
    layout = AddressSpaceLayout()
    if addresses.size:
        lo = int(addresses.min()) & ~((1 << 21) - 1)
        hi = int(addresses.max()) + 4096
        span = max(hi - lo, 2 << 20)
    else:
        lo, span = 0x5555_5540_0000, 2 << 20
    # place one VMA exactly over the touched range
    vma_layout = AddressSpaceLayout(heap_base=lo or (2 << 20))
    vma_layout.allocate("data", span)
    trace = Trace(name=name, addresses=addresses, footprint_bytes=span)
    return ProcessWorkload.single_thread(trace, vma_layout)


@pytest.fixture
def tiny_bfs_workload(small_graph):
    from repro.workloads.bfs import bfs_workload

    return bfs_workload(small_graph)
