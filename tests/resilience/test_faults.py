"""Fault-injection harness: spec grammar, exactly-once firing, kinds."""

import os
from pathlib import Path

import pytest

from repro.resilience.faults import (
    CRASH_EXIT_CODE,
    FAULT_STATE_ENV,
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    InjectedFault,
    corrupt_file,
    current_plan,
    fault_point,
    injecting,
    parse_faults,
)


class TestParseFaults:
    def test_minimal_spec(self):
        (spec,) = parse_faults("exc@worker.task")
        assert spec == FaultSpec(kind="exc", site="worker.task")
        assert spec.nth == 1 and spec.match == "" and spec.arg is None

    def test_full_grammar(self):
        (spec,) = parse_faults("hang@worker.task:2~BFS=30")
        assert spec.kind == "hang"
        assert spec.site == "worker.task"
        assert spec.nth == 2
        assert spec.match == "BFS"
        assert spec.arg == 30.0

    def test_multiple_specs_comma_separated(self):
        specs = parse_faults("crash@worker.task, corrupt@trace.cache.read")
        assert [s.kind for s in specs] == ["crash", "corrupt"]

    def test_empty_chunks_skipped(self):
        assert parse_faults(" , ,") == ()

    @pytest.mark.parametrize(
        "bad",
        [
            "exc",  # no @site
            "boom@worker.task",  # unknown kind
            "exc@",  # empty site
            "exc@site:x",  # non-integer nth
            "exc@site:0",  # nth below 1
            "hang@site=soon",  # non-numeric arg
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(FaultSpecError):
            parse_faults(bad)


class TestFaultPlan:
    def test_due_counts_occurrences(self):
        plan = FaultPlan(parse_faults("exc@site:2"), state_dir=None)
        assert plan.due("site", "") is None  # first occurrence
        assert plan.due("site", "") is not None  # second fires
        assert plan.due("site", "") is None  # past nth

    def test_due_filters_on_match(self):
        plan = FaultPlan(parse_faults("exc@site~BFS"), state_dir=None)
        assert plan.due("site", "mcf run") is None
        assert plan.due("site", "BFS run") is not None

    def test_due_ignores_other_sites(self):
        plan = FaultPlan(parse_faults("exc@site.a"), state_dir=None)
        assert plan.due("site.b", "") is None

    def test_claim_local_is_once(self):
        (spec,) = specs = parse_faults("exc@site")
        plan = FaultPlan(specs, state_dir=None)
        assert plan.claim(spec) is True
        assert plan.claim(spec) is False

    def test_claim_is_once_across_plans_with_state_dir(self, tmp_path):
        """Two plans sharing a state dir model two worker processes."""
        (spec,) = specs = parse_faults("exc@site")
        first = FaultPlan(specs, state_dir=tmp_path)
        second = FaultPlan(specs, state_dir=tmp_path)
        assert first.claim(spec) is True
        assert second.claim(spec) is False
        assert first.claim(spec) is False


class TestFaultPoint:
    def test_noop_when_idle(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        fault_point("worker.task", detail="anything")  # must not raise

    def test_exc_fires_once(self, tmp_path):
        with injecting("exc@unit.site", state_dir=tmp_path):
            with pytest.raises(InjectedFault):
                fault_point("unit.site")
            fault_point("unit.site")  # claimed: the retry runs clean

    def test_crash_in_main_degrades_to_exception(self, tmp_path):
        """The main process must never be hard-killed by a fault."""
        with injecting("crash@unit.site", state_dir=tmp_path):
            with pytest.raises(InjectedFault, match="main process"):
                fault_point("unit.site")

    def test_corrupt_damages_offered_file(self, tmp_path):
        victim = tmp_path / "payload.bin"
        victim.write_bytes(bytes(range(256)) * 8)
        original = victim.read_bytes()
        with injecting("corrupt@unit.site", state_dir=tmp_path):
            fault_point("unit.site", paths=[victim])
        assert victim.read_bytes() != original

    def test_injected_faults_are_counted(self, tmp_path):
        from repro.resilience import bus

        before = bus.snapshot()["resilience.faults.injected"]
        with injecting("exc@unit.site", state_dir=tmp_path):
            with pytest.raises(InjectedFault):
                fault_point("unit.site")
        assert bus.snapshot()["resilience.faults.injected"] == before + 1

    def test_crash_exit_code_documented(self):
        assert CRASH_EXIT_CODE == 70


class TestCurrentPlan:
    def test_none_when_env_unset(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert current_plan() is None

    def test_rebuilds_when_env_changes(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "exc@a")
        first = current_plan()
        assert first is not None and first.specs[0].site == "a"
        monkeypatch.setenv(FAULTS_ENV, "exc@b")
        second = current_plan()
        assert second is not first and second.specs[0].site == "b"

    def test_cached_between_identical_reads(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "exc@a")
        assert current_plan() is current_plan()


class TestInjecting:
    def test_restores_environment(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FAULTS_ENV, "exc@before")
        monkeypatch.delenv(FAULT_STATE_ENV, raising=False)
        with injecting("crash@inside", state_dir=tmp_path):
            assert os.environ[FAULTS_ENV] == "crash@inside"
            assert os.environ[FAULT_STATE_ENV] == str(tmp_path)
        assert os.environ[FAULTS_ENV] == "exc@before"
        assert FAULT_STATE_ENV not in os.environ


class TestCorruptFile:
    def test_shortens_and_garbles(self, tmp_path):
        path = tmp_path / "data"
        payload = bytes(range(200))
        path.write_bytes(payload)
        corrupt_file(path)
        damaged = path.read_bytes()
        assert len(damaged) == len(payload) // 2
        assert damaged[:16] != payload[:16]

    def test_missing_file_is_ignored(self, tmp_path):
        corrupt_file(Path(tmp_path / "absent"))  # must not raise
