"""Checkpoint journal: keys, atomic shards, self-healing, env wiring."""

from dataclasses import dataclass

import pytest

from repro.resilience.faults import corrupt_file
from repro.resilience.journal import (
    JOURNAL_ENV,
    RunJournal,
    journal_from_env,
    stable_form,
)


def _fn_a(task):
    return task


def _fn_b(task):
    return task


@dataclass(frozen=True)
class _Spec:
    app: str
    budget: int


class TestKeys:
    def test_stable_across_instances(self, tmp_path):
        first = RunJournal(tmp_path).key_for(_fn_a, ("BFS", 4))
        second = RunJournal(tmp_path).key_for(_fn_a, ("BFS", 4))
        assert first == second

    def test_differs_by_task(self, tmp_path):
        journal = RunJournal(tmp_path)
        assert journal.key_for(_fn_a, ("BFS", 4)) != journal.key_for(
            _fn_a, ("BFS", 8)
        )

    def test_differs_by_task_function(self, tmp_path):
        """Two figures with tuple-shaped tasks must never collide."""
        journal = RunJournal(tmp_path)
        assert journal.key_for(_fn_a, (1, 2)) != journal.key_for(_fn_b, (1, 2))

    def test_dataclass_tasks_key_by_fields(self, tmp_path):
        journal = RunJournal(tmp_path)
        assert journal.key_for(_fn_a, _Spec("BFS", 4)) == journal.key_for(
            _fn_a, _Spec("BFS", 4)
        )
        assert journal.key_for(_fn_a, _Spec("BFS", 4)) != journal.key_for(
            _fn_a, _Spec("BFS", 8)
        )


class TestStableForm:
    def test_primitives_pass_through(self):
        assert stable_form(("a", 1, 2.5, None, True)) == ["a", 1, 2.5, None, True]

    def test_dataclass_renders_type_and_fields(self):
        form = stable_form(_Spec("BFS", 4))
        assert form == {
            "__dataclass__": "_Spec",
            "fields": {"app": "BFS", "budget": 4},
        }

    def test_dicts_sort_keys(self):
        assert stable_form({"b": 1, "a": 2}) == {"a": 2, "b": 1}


class TestRoundTrip:
    def test_commit_then_load(self, tmp_path):
        journal = RunJournal(tmp_path)
        key = journal.key_for(_fn_a, ("BFS", 4))
        journal.commit(key, {"cycles": 123, "walks": 7})
        assert journal.load(key) == {"cycles": 123, "walks": 7}
        assert journal.stats.commits == 1
        assert journal.stats.resumed == 1

    def test_missing_shard_is_a_miss(self, tmp_path):
        journal = RunJournal(tmp_path)
        assert journal.load("0" * 24) is None
        assert journal.stats.misses == 1

    def test_keys_and_len_and_clear(self, tmp_path):
        journal = RunJournal(tmp_path)
        for task in (("a",), ("b",)):
            journal.commit(journal.key_for(_fn_a, task), task)
        assert len(journal) == 2
        assert journal.keys() == sorted(journal.keys())
        assert journal.clear() == 2
        assert len(journal) == 0


class TestSelfHealing:
    def test_corrupt_shard_is_quarantined(self, tmp_path):
        journal = RunJournal(tmp_path)
        key = journal.key_for(_fn_a, ("BFS", 4))
        journal.commit(key, list(range(1000)))
        corrupt_file(journal.shard_path(key))
        assert journal.load(key) is None
        # moved aside, not destroyed: the key reads as a miss but the
        # damaged bytes stay inspectable under quarantine/
        assert not journal.shard_path(key).exists()
        quarantined = journal.quarantine_dir / journal.shard_path(key).name
        assert quarantined.exists()
        assert journal.stats.corrupt == 1

    def test_quarantined_shards_drop_out_of_keys(self, tmp_path):
        journal = RunJournal(tmp_path)
        bad = journal.key_for(_fn_a, ("BFS", 4))
        good = journal.key_for(_fn_a, ("PR", 8))
        journal.commit(bad, "doomed")
        journal.commit(good, "intact")
        corrupt_file(journal.shard_path(bad))
        assert journal.load(bad) is None
        # resume continues from the intact checkpoint
        assert journal.keys() == [good]
        assert journal.load(good) == "intact"

    def test_wrong_magic_is_discarded(self, tmp_path):
        journal = RunJournal(tmp_path)
        key = journal.key_for(_fn_a, ("x",))
        journal.shard_path(key).parent.mkdir(parents=True, exist_ok=True)
        journal.shard_path(key).write_bytes(b"not a shard at all")
        assert journal.load(key) is None
        assert journal.stats.corrupt == 1

    def test_recommit_after_corruption_restores(self, tmp_path):
        journal = RunJournal(tmp_path)
        key = journal.key_for(_fn_a, ("BFS", 4))
        journal.commit(key, "result")
        corrupt_file(journal.shard_path(key))
        assert journal.load(key) is None
        journal.commit(key, "result")
        assert journal.load(key) == "result"


class TestJournalFromEnv:
    @pytest.mark.parametrize("value", ["off", "0", "none", "OFF", ""])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(JOURNAL_ENV, value)
        assert journal_from_env() is None

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv(JOURNAL_ENV, raising=False)
        assert journal_from_env() is None

    def test_path_selects_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv(JOURNAL_ENV, str(tmp_path / "j"))
        journal = journal_from_env()
        assert journal is not None
        assert journal.directory == tmp_path / "j"
