"""Resilient fan-out: retries, quarantine, pool healing, resume."""

import os
import pickle
from dataclasses import dataclass

import pytest

from repro.experiments.parallel import (
    JOBS_ENV,
    FanOutError,
    FanOutReport,
    TaskError,
    describe_task,
    fan_out,
    resolve_jobs,
)
from repro.resilience import bus
from repro.resilience.faults import injecting
from repro.resilience.journal import RunJournal
from repro.resilience.retry import RetryPolicy

#: retries without wall-clock cost: zero backoff, no jitter
FAST = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


def _square(x: int) -> int:
    return x * x


def _boom(task) -> None:
    raise ValueError(f"cannot process {task}")


def _gated(x: int) -> int:
    if os.environ.get("REPRO_TEST_GATE") != "open":
        raise AssertionError("task recomputed instead of resumed")
    return x * 10


@dataclass(frozen=True)
class _Spec:
    app: str
    budget: int


class TestResolveJobsGarbageEnv:
    def test_logs_naming_the_variable_and_runs_serially(self, monkeypatch, caplog):
        monkeypatch.setenv(JOBS_ENV, "two")
        with caplog.at_level("WARNING", logger="repro"):
            assert resolve_jobs(None) == 1
        assert any(JOBS_ENV in record.message for record in caplog.records)

    def test_explicit_jobs_bypasses_garbage_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "two")
        assert resolve_jobs(3) == 3


class TestTaskIdentity:
    def test_describe_prefers_label(self):
        class Labelled:
            label = "BFS/pcc@8%"

        assert describe_task(Labelled()) == "BFS/pcc@8%"

    def test_describe_renders_dataclass_fields(self):
        desc = describe_task(_Spec(app="BFS", budget=4))
        assert "app='BFS'" in desc and "budget=4" in desc

    def test_describe_falls_back_to_repr(self):
        assert describe_task(("BFS", 4)) == "('BFS', 4)"

    def test_task_error_survives_pickling(self):
        err = TaskError("BFS/pcc", "ValueError: nope")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.task_desc == "BFS/pcc"
        assert clone.cause == "ValueError: nope"
        assert "BFS/pcc" in str(clone)


class TestQuarantine:
    def test_persistent_failure_raises_with_task_identity(self):
        with pytest.raises(FanOutError) as excinfo:
            fan_out(_boom, [_Spec(app="BFS", budget=4)], jobs=1, policy=FAST)
        report = excinfo.value.report
        (failure,) = report.quarantined
        assert "BFS" in failure.task  # which spec failed, not just that one did
        assert failure.attempts == FAST.max_attempts
        assert any("ValueError" in error for error in failure.errors)
        assert "BFS" in str(excinfo.value)

    def test_report_shapes_are_json_safe(self):
        with pytest.raises(FanOutError) as excinfo:
            fan_out(_boom, [("x",)], jobs=1, policy=FAST)
        as_dict = excinfo.value.report.as_dict()
        assert as_dict["tasks"] == 1
        assert as_dict["quarantined"][0]["attempts"] == FAST.max_attempts
        assert FanOutReport().eventful is False
        assert excinfo.value.report.eventful is True


class TestRetry:
    def test_transient_fault_is_retried_to_success(self, tmp_path):
        retried_before = bus.snapshot()["resilience.tasks.retried"]
        with injecting("exc@worker.task", state_dir=tmp_path):
            assert fan_out(_square, [3, 4], jobs=1, policy=FAST) == [9, 16]
        assert bus.snapshot()["resilience.tasks.retried"] == retried_before + 1

    def test_eventful_report_published_to_collectors(self, tmp_path):
        from repro.metrics import SCHEMA, collecting

        with injecting("exc@worker.task", state_dir=tmp_path):
            with collecting() as collector:
                fan_out(_square, [3], jobs=1, policy=FAST)
        (run,) = collector.runs
        assert run["schema"] == SCHEMA
        assert run["meta"]["component"] == "resilience"
        assert run["meta"]["report"]["retries"] == 1

    def test_quiet_run_publishes_nothing(self):
        from repro.metrics import collecting

        with collecting() as collector:
            fan_out(_square, [1, 2], jobs=1, policy=FAST)
        assert collector.runs == []


class TestPoolHealing:
    def test_worker_crash_rebuilds_pool_and_completes(self, tmp_path):
        rebuilds_before = bus.snapshot()["resilience.pool.rebuilds"]
        tasks = list(range(6))
        with injecting("crash@worker.task", state_dir=tmp_path):
            results = fan_out(_square, tasks, jobs=2, policy=FAST)
        assert results == [x * x for x in tasks]
        assert bus.snapshot()["resilience.pool.rebuilds"] > rebuilds_before

    def test_hung_worker_times_out_and_recovers(self, tmp_path):
        timeouts_before = bus.snapshot()["resilience.tasks.timeouts"]
        policy = RetryPolicy(
            max_attempts=3, timeout=1.0, backoff_base=0.0, jitter=0.0
        )
        tasks = list(range(4))
        with injecting("hang@worker.task=30", state_dir=tmp_path):
            results = fan_out(_square, tasks, jobs=2, policy=policy)
        assert results == [x * x for x in tasks]
        assert bus.snapshot()["resilience.tasks.timeouts"] > timeouts_before

    def test_serial_fallback_after_pool_rebuild_budget(self, tmp_path):
        fallbacks_before = bus.snapshot()["resilience.pool.serial_fallbacks"]
        policy = RetryPolicy(
            max_attempts=3, backoff_base=0.0, jitter=0.0, max_pool_rebuilds=0
        )
        tasks = list(range(5))
        with injecting("crash@worker.task", state_dir=tmp_path):
            results = fan_out(_square, tasks, jobs=2, policy=policy)
        assert results == [x * x for x in tasks]
        assert (
            bus.snapshot()["resilience.pool.serial_fallbacks"]
            > fallbacks_before
        )


class TestJournalIntegration:
    def test_every_result_is_committed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_GATE", "open")
        journal = RunJournal(tmp_path)
        assert fan_out(_gated, [1, 2, 3], jobs=1, journal=journal) == [
            10,
            20,
            30,
        ]
        assert len(journal) == 3

    def test_resume_skips_committed_tasks(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_GATE", "open")
        fan_out(_gated, [1, 2, 3], jobs=1, journal=RunJournal(tmp_path))
        # _gated now raises if executed: success proves nothing re-ran
        monkeypatch.setenv("REPRO_TEST_GATE", "closed")
        journal = RunJournal(tmp_path)
        assert fan_out(
            _gated, [1, 2, 3], jobs=1, journal=journal, resume=True
        ) == [10, 20, 30]
        assert journal.stats.resumed == 3
        assert journal.stats.commits == 0

    def test_resume_recomputes_only_corrupt_shards(self, tmp_path, monkeypatch):
        from repro.resilience.faults import corrupt_file

        monkeypatch.setenv("REPRO_TEST_GATE", "open")
        first = RunJournal(tmp_path)
        fan_out(_gated, [1, 2, 3], jobs=1, journal=first)
        victim = first.key_for(_gated, 2)
        corrupt_file(first.shard_path(victim))
        journal = RunJournal(tmp_path)
        assert fan_out(
            _gated, [1, 2, 3], jobs=1, journal=journal, resume=True
        ) == [10, 20, 30]
        assert journal.stats.resumed == 2
        assert journal.stats.corrupt == 1
        assert journal.stats.commits == 1  # only the damaged task re-ran

    def test_without_resume_everything_recomputes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_GATE", "open")
        fan_out(_gated, [1], jobs=1, journal=RunJournal(tmp_path))
        journal = RunJournal(tmp_path)
        fan_out(_gated, [1], jobs=1, journal=journal)  # resume defaults off
        assert journal.stats.resumed == 0
        assert journal.stats.commits == 1
