"""Retry policy: environment parsing and deterministic backoff."""

import pytest

from repro.resilience.retry import RETRIES_ENV, TIMEOUT_ENV, RetryPolicy


class TestFromEnv:
    def test_defaults_without_env(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        monkeypatch.delenv(RETRIES_ENV, raising=False)
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 3
        assert policy.timeout is None

    def test_env_values_applied(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "12.5")
        monkeypatch.setenv(RETRIES_ENV, "5")
        policy = RetryPolicy.from_env()
        assert policy.timeout == 12.5
        assert policy.max_attempts == 5

    def test_garbage_timeout_warns_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "soon")
        with pytest.warns(RuntimeWarning, match=TIMEOUT_ENV):
            policy = RetryPolicy.from_env()
        assert policy.timeout is None

    def test_garbage_retries_warns_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "many")
        with pytest.warns(RuntimeWarning, match=RETRIES_ENV):
            policy = RetryPolicy.from_env()
        assert policy.max_attempts == 3

    def test_retries_floor_is_one(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "-4")
        assert RetryPolicy.from_env().max_attempts == 1


class TestDelay:
    def test_deterministic_for_same_inputs(self):
        policy = RetryPolicy()
        assert policy.delay("task-3", 1) == policy.delay("task-3", 1)

    def test_differs_across_keys_and_attempts(self):
        policy = RetryPolicy()
        assert policy.delay("a", 1) != policy.delay("b", 1)
        assert policy.delay("a", 1) < policy.delay("a", 4)

    def test_bounded_by_backoff_max_plus_jitter(self):
        policy = RetryPolicy(backoff_max=0.5, jitter=0.25)
        for attempt in range(1, 12):
            assert policy.delay("k", attempt) <= 0.5 * 1.25

    def test_seed_changes_the_jitter_stream(self):
        assert RetryPolicy(seed=0).delay("k", 1) != RetryPolicy(seed=1).delay(
            "k", 1
        )
