"""Tests for the resilience layer (faults, retry, journal, fan-out)."""
