"""Unit tests for the 4-level page table."""

import pytest

from repro.vm.address import GIGA_PAGE_SIZE, HUGE_PAGE_SIZE, PageSize
from repro.vm.pagetable import PageTable, PageTableError

BASE = 0x5555_5540_0000  # 2MB-aligned


@pytest.fixture
def table():
    return PageTable(pid=1)


class TestBaseMapping:
    def test_unmapped_by_default(self, table):
        assert not table.is_mapped(BASE)
        assert table.translate(BASE) is None

    def test_map_and_translate(self, table):
        table.map_base(BASE, frame=7)
        mapping = table.translate(BASE + 100)
        assert mapping.page_size is PageSize.BASE
        assert mapping.frame == 7
        assert mapping.tag == BASE >> 12

    def test_double_map_rejected(self, table):
        table.map_base(BASE, frame=1)
        with pytest.raises(PageTableError, match="already mapped"):
            table.map_base(BASE + 100, frame=2)  # same 4KB page

    def test_adjacent_pages_independent(self, table):
        table.map_base(BASE, frame=1)
        assert not table.is_mapped(BASE + 4096)
        table.map_base(BASE + 4096, frame=2)
        assert table.translate(BASE + 4096).frame == 2

    def test_fault_count(self, table):
        table.map_base(BASE, frame=1)
        table.map_base(BASE + 4096, frame=2)
        assert table.stats.faults == 2


class TestHugeMapping:
    def test_map_huge_covers_region(self, table):
        table.map_huge(BASE, frame=3)
        for offset in (0, 4096, HUGE_PAGE_SIZE - 1):
            mapping = table.translate(BASE + offset)
            assert mapping.page_size is PageSize.HUGE
            assert mapping.frame == 3

    def test_map_huge_rejected_over_base_pages(self, table):
        table.map_base(BASE, frame=1)
        with pytest.raises(PageTableError, match="use promote"):
            table.map_huge(BASE, frame=2)

    def test_map_huge_twice_rejected(self, table):
        table.map_huge(BASE, frame=1)
        with pytest.raises(PageTableError, match="already promoted"):
            table.map_huge(BASE + 8192, frame=2)

    def test_map_base_rejected_under_huge(self, table):
        table.map_huge(BASE, frame=1)
        with pytest.raises(PageTableError, match="promoted 2MB region"):
            table.map_base(BASE + 4096, frame=9)


class TestPromotion:
    def test_promote_collapses_ptes(self, table):
        prefix = BASE >> 21
        for i in range(4):
            table.map_base(BASE + i * 4096, frame=i)
        remapped = table.promote(prefix, frame=42)
        assert remapped == 4
        assert table.is_promoted(prefix)
        assert table.mapped_base_page_count() == 0
        mapping = table.translate(BASE + 3 * 4096)
        assert mapping.page_size is PageSize.HUGE
        assert mapping.frame == 42

    def test_promote_empty_region_rejected(self, table):
        with pytest.raises(PageTableError, match="no mapped pages"):
            table.promote(BASE >> 21, frame=1)

    def test_promote_twice_rejected(self, table):
        table.map_base(BASE, frame=1)
        table.promote(BASE >> 21, frame=2)
        with pytest.raises(PageTableError, match="already promoted"):
            table.promote(BASE >> 21, frame=3)

    def test_promotion_stats(self, table):
        table.map_base(BASE, frame=1)
        table.promote(BASE >> 21, frame=2)
        assert table.stats.promotions == 1

    def test_promoted_regions_sorted(self, table):
        for region in (5, 2, 9):
            vaddr = region * HUGE_PAGE_SIZE
            table.map_base(vaddr, frame=region)
            table.promote(region, frame=region)
        assert table.promoted_regions() == [2, 5, 9]


class TestDemotion:
    def test_demote_restores_base_pages(self, table):
        prefix = BASE >> 21
        table.map_base(BASE, frame=1)
        table.promote(prefix, frame=2)
        table.demote(prefix)
        assert not table.is_promoted(prefix)
        mapping = table.translate(BASE)
        assert mapping.page_size is PageSize.BASE
        # the whole region is split into 512 base pages, as in Linux
        assert table.mapped_base_page_count() == 512

    def test_demote_unpromoted_rejected(self, table):
        with pytest.raises(PageTableError, match="not promoted"):
            table.demote(BASE >> 21)

    def test_demote_with_wrong_frame_count(self, table):
        table.map_base(BASE, frame=1)
        table.promote(BASE >> 21, frame=2)
        with pytest.raises(PageTableError, match="needs 512 frames"):
            table.demote(BASE >> 21, frames=[1, 2, 3])

    def test_demotion_stats(self, table):
        table.map_base(BASE, frame=1)
        table.promote(BASE >> 21, frame=2)
        table.demote(BASE >> 21)
        assert table.stats.demotions == 1


class TestGigaPromotion:
    def test_promote_giga_absorbs_base_and_huge(self, table):
        giga_base = GIGA_PAGE_SIZE  # giga region 1
        table.map_base(giga_base, frame=1)
        table.map_huge(giga_base + HUGE_PAGE_SIZE, frame=2)
        absorbed = table.promote_giga(1, frame=77)
        assert absorbed == 2
        assert table.is_giga_promoted(1)
        for offset in (0, HUGE_PAGE_SIZE + 5, GIGA_PAGE_SIZE - 1):
            mapping = table.translate(giga_base + offset)
            assert mapping.page_size is PageSize.GIGA
            assert mapping.frame == 77

    def test_promote_giga_empty_rejected(self, table):
        with pytest.raises(PageTableError, match="nothing to promote"):
            table.promote_giga(5, frame=1)

    def test_promote_giga_twice_rejected(self, table):
        table.map_base(GIGA_PAGE_SIZE, frame=1)
        table.promote_giga(1, frame=2)
        with pytest.raises(PageTableError, match="already promoted"):
            table.promote_giga(1, frame=3)


class TestWalkAccessBits:
    def test_walk_of_unmapped_raises(self, table):
        with pytest.raises(PageTableError, match="unmapped"):
            table.walk(BASE)

    def test_first_walk_reports_cold_bits(self, table):
        table.map_base(BASE, frame=1)
        _, pud_was, pmd_was = table.walk(BASE)
        assert not pud_was
        assert not pmd_was

    def test_second_walk_sees_set_bits(self, table):
        table.map_base(BASE, frame=1)
        table.walk(BASE)
        _, pud_was, pmd_was = table.walk(BASE)
        assert pud_was
        assert pmd_was

    def test_sibling_page_in_region_sees_pmd_bit(self, table):
        table.map_base(BASE, frame=1)
        table.map_base(BASE + 4096, frame=2)
        table.walk(BASE)
        _, _, pmd_was = table.walk(BASE + 4096)
        assert pmd_was  # PMD accessed bit is per 2MB region

    def test_giga_walk_has_no_pmd_level(self, table):
        table.map_base(GIGA_PAGE_SIZE, frame=1)
        table.promote_giga(1, frame=2)
        mapping, _, pmd_was = table.walk(GIGA_PAGE_SIZE + 123)
        assert mapping.page_size is PageSize.GIGA
        assert not pmd_was

    def test_clear_accessed_bits(self, table):
        table.map_base(BASE, frame=1)
        table.walk(BASE)
        table.clear_accessed_bits()
        _, pud_was, pmd_was = table.walk(BASE)
        assert not pud_was
        assert not pmd_was

    def test_accessed_pages_in_region_counts_pte_bits(self, table):
        table.map_base(BASE, frame=1)
        table.map_base(BASE + 4096, frame=2)
        table.walk(BASE)
        assert table.accessed_pages_in_region(BASE >> 21) == 1
        table.walk(BASE + 4096)
        assert table.accessed_pages_in_region(BASE >> 21) == 2

    def test_region_accessed_flag(self, table):
        table.map_base(BASE, frame=1)
        assert not table.region_accessed(BASE >> 21)
        table.walk(BASE)
        assert table.region_accessed(BASE >> 21)


class TestInventory:
    def test_mapped_pages_in_region(self, table):
        table.map_base(BASE, frame=1)
        table.map_base(BASE + 2 * 4096, frame=2)
        pages = table.mapped_pages_in_region(BASE >> 21)
        assert pages == [BASE >> 12, (BASE >> 12) + 2]

    def test_touched_huge_regions(self, table):
        table.map_base(BASE, frame=1)
        table.map_huge(BASE + 4 * HUGE_PAGE_SIZE, frame=2)
        regions = table.touched_huge_regions()
        assert regions == [BASE >> 21, (BASE >> 21) + 4]
