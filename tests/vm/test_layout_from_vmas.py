"""Tests for layout reconstruction from recorded VMA metadata."""

import pytest

from repro.vm.layout import AddressSpaceLayout


class TestFromVMAs:
    def test_round_trip(self):
        original = AddressSpaceLayout()
        original.allocate("a", 5 << 20)
        original.allocate("b", 1 << 20)
        recorded = {vma.name: (vma.start, vma.length) for vma in original}
        rebuilt = AddressSpaceLayout.from_vmas(recorded)
        assert len(rebuilt) == 2
        assert rebuilt["a"].start == original["a"].start
        assert rebuilt.footprint_bytes == original.footprint_bytes
        assert rebuilt.huge_region_count == original.huge_region_count

    def test_find_works_after_rebuild(self):
        rebuilt = AddressSpaceLayout.from_vmas(
            {"data": (0x7000_0000_0000, 4096)}
        )
        assert rebuilt.find(0x7000_0000_0000 + 100).name == "data"
        assert rebuilt.find(0) is None

    def test_further_allocation_does_not_overlap(self):
        rebuilt = AddressSpaceLayout.from_vmas(
            {"data": (0x7000_0000_0000, 8 << 20)}
        )
        extra = rebuilt.allocate("extra", 4096)
        assert extra.start >= rebuilt["data"].end

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            AddressSpaceLayout.from_vmas({"bad": (0, 0)})

    def test_empty_mapping(self):
        rebuilt = AddressSpaceLayout.from_vmas({})
        assert len(rebuilt) == 0
        assert rebuilt.footprint_bytes == 0
