"""Unit tests for the deterministic address-space layout."""

import pytest

from repro.vm.address import HUGE_PAGE_SIZE, PageSize
from repro.vm.layout import DEFAULT_HEAP_BASE, AddressSpaceLayout, VMA


class TestAllocation:
    def test_first_allocation_at_heap_base(self, layout):
        vma = layout.allocate("a", 4096)
        assert vma.start == DEFAULT_HEAP_BASE

    def test_allocations_do_not_overlap(self, layout):
        vmas = [layout.allocate(f"v{i}", 123_456) for i in range(10)]
        for left, right in zip(vmas, vmas[1:]):
            assert left.end <= right.start

    def test_allocations_are_2mb_aligned(self, layout):
        for i in range(5):
            vma = layout.allocate(f"v{i}", 1000 + i)
            assert vma.start % HUGE_PAGE_SIZE == 0

    def test_deterministic_across_instances(self):
        first = AddressSpaceLayout()
        second = AddressSpaceLayout()
        for name, size in (("x", 5000), ("y", 70_000), ("z", 3 << 20)):
            assert first.allocate(name, size) == second.allocate(name, size)

    def test_guard_region_separates_vmas(self, layout):
        a = layout.allocate("a", 100)
        b = layout.allocate("b", 100)
        # adjacent VMAs never share a 2MB region
        assert set(a.huge_regions).isdisjoint(b.huge_regions)

    def test_rejects_duplicate_name(self, layout):
        layout.allocate("dup", 100)
        with pytest.raises(ValueError, match="already in use"):
            layout.allocate("dup", 100)

    def test_rejects_nonpositive_length(self, layout):
        with pytest.raises(ValueError):
            layout.allocate("bad", 0)
        with pytest.raises(ValueError):
            layout.allocate("bad2", -5)

    def test_custom_alignment(self, layout):
        vma = layout.allocate("giga", 100, align=PageSize.GIGA)
        assert vma.start % PageSize.GIGA.bytes == 0

    def test_unaligned_heap_base_rejected(self):
        with pytest.raises(ValueError, match="2MB-aligned"):
            AddressSpaceLayout(heap_base=4096)

    def test_exhaustion_raises_memory_error(self):
        layout = AddressSpaceLayout()
        with pytest.raises(MemoryError):
            layout.allocate("huge", 1 << 48)


class TestVMA:
    def test_contains(self):
        vma = VMA("v", 0x1000_0000, 4096)
        assert vma.contains(0x1000_0000)
        assert vma.contains(0x1000_0FFF)
        assert not vma.contains(0x1000_1000)
        assert not vma.contains(0x0FFF_FFFF)

    def test_address_of(self):
        vma = VMA("v", 0x1000_0000, 4096)
        assert vma.address_of(0) == 0x1000_0000
        assert vma.address_of(4095) == 0x1000_0FFF

    def test_address_of_out_of_bounds(self):
        vma = VMA("v", 0x1000_0000, 4096)
        with pytest.raises(IndexError):
            vma.address_of(4096)
        with pytest.raises(IndexError):
            vma.address_of(-1)

    def test_huge_regions(self):
        vma = VMA("v", 0, 3 * HUGE_PAGE_SIZE)
        assert list(vma.huge_regions) == [0, 1, 2]


class TestQueries:
    def test_find(self, layout):
        a = layout.allocate("a", 10_000)
        b = layout.allocate("b", 10_000)
        assert layout.find(a.start + 5) is a
        assert layout.find(b.start) is b
        assert layout.find(0) is None

    def test_getitem_and_contains(self, layout):
        vma = layout.allocate("data", 64)
        assert layout["data"] is vma
        assert "data" in layout
        assert "missing" not in layout

    def test_iteration_and_len(self, layout):
        layout.allocate("a", 1)
        layout.allocate("b", 1)
        assert len(layout) == 2
        assert [vma.name for vma in layout] == ["a", "b"]

    def test_footprint_bytes(self, layout):
        layout.allocate("a", 1000)
        layout.allocate("b", 2000)
        assert layout.footprint_bytes == 3000

    def test_huge_region_count(self, layout):
        layout.allocate("a", 5 << 20)  # 3 regions (2.5 rounded up)
        count = layout.huge_region_count
        assert count == 3
