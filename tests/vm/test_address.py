"""Unit tests for virtual-address arithmetic."""

import numpy as np
import pytest

from repro.vm import address as adr
from repro.vm.address import PageSize


class TestConstants:
    def test_page_sizes(self):
        assert adr.BASE_PAGE_SIZE == 4096
        assert adr.HUGE_PAGE_SIZE == 2 * 1024 * 1024
        assert adr.GIGA_PAGE_SIZE == 1024 * 1024 * 1024

    def test_pages_per_huge_is_512(self):
        assert adr.PAGES_PER_HUGE == 512
        assert adr.HUGE_PER_GIGA == 512

    def test_page_size_enum_bytes(self):
        assert PageSize.BASE.bytes == 4096
        assert PageSize.HUGE.bytes == 2 << 20
        assert PageSize.GIGA.bytes == 1 << 30

    def test_page_size_base_pages(self):
        assert PageSize.BASE.base_pages == 1
        assert PageSize.HUGE.base_pages == 512
        assert PageSize.GIGA.base_pages == 512 * 512

    def test_page_sizes_order_by_coverage(self):
        assert PageSize.BASE < PageSize.HUGE < PageSize.GIGA


class TestPrefixes:
    def test_vpn(self):
        assert adr.vpn(0) == 0
        assert adr.vpn(4095) == 0
        assert adr.vpn(4096) == 1
        assert adr.vpn(0x1234_5678) == 0x1234_5678 >> 12

    def test_huge_prefix(self):
        assert adr.huge_prefix(0) == 0
        assert adr.huge_prefix(adr.HUGE_PAGE_SIZE - 1) == 0
        assert adr.huge_prefix(adr.HUGE_PAGE_SIZE) == 1

    def test_giga_prefix(self):
        assert adr.giga_prefix(adr.GIGA_PAGE_SIZE * 3 + 17) == 3

    def test_region_prefix_matches_specialized(self):
        vaddr = 0x7F12_3456_7ABC
        assert adr.region_prefix(vaddr, PageSize.BASE) == adr.vpn(vaddr)
        assert adr.region_prefix(vaddr, PageSize.HUGE) == adr.huge_prefix(vaddr)
        assert adr.region_prefix(vaddr, PageSize.GIGA) == adr.giga_prefix(vaddr)

    def test_page_base(self):
        assert adr.page_base(0x1234_5678, PageSize.BASE) == 0x1234_5000
        assert adr.page_base(adr.HUGE_PAGE_SIZE + 5, PageSize.HUGE) == (
            adr.HUGE_PAGE_SIZE
        )


class TestAlignment:
    def test_align_down(self):
        assert adr.align_down(4097, PageSize.BASE) == 4096
        assert adr.align_down(4096, PageSize.BASE) == 4096

    def test_align_up(self):
        assert adr.align_up(4097, PageSize.BASE) == 8192
        assert adr.align_up(4096, PageSize.BASE) == 4096
        assert adr.align_up(0, PageSize.HUGE) == 0

    def test_align_with_raw_int(self):
        assert adr.align_up(100, 64) == 128
        assert adr.align_down(100, 64) == 64

    def test_is_aligned(self):
        assert adr.is_aligned(0, PageSize.GIGA)
        assert adr.is_aligned(2 << 20, PageSize.HUGE)
        assert not adr.is_aligned((2 << 20) + 1, PageSize.HUGE)


class TestRanges:
    def test_pages_in_huge(self):
        pages = adr.pages_in_huge(2)
        assert len(pages) == 512
        assert pages[0] == 1024
        assert pages[-1] == 1535

    def test_pages_in_region_base(self):
        assert list(adr.pages_in_region(7, PageSize.BASE)) == [7]

    def test_huge_regions_of_spanning(self):
        regions = adr.huge_regions_of(adr.HUGE_PAGE_SIZE - 1, 2)
        assert list(regions) == [0, 1]

    def test_huge_regions_of_empty(self):
        assert len(adr.huge_regions_of(0, 0)) == 0

    def test_huge_regions_single(self):
        assert list(adr.huge_regions_of(100, 100)) == [0]


class TestVectorized:
    def test_vpns_of(self):
        addresses = np.array([0, 4096, 8192 + 7], dtype=np.uint64)
        assert adr.vpns_of(addresses).tolist() == [0, 1, 2]

    def test_huge_prefixes_of(self):
        addresses = np.array(
            [0, adr.HUGE_PAGE_SIZE, 3 * adr.HUGE_PAGE_SIZE + 9], dtype=np.uint64
        )
        assert adr.huge_prefixes_of(addresses).tolist() == [0, 1, 3]


class TestCanonical:
    def test_accepts_valid(self):
        adr.check_canonical(0)
        adr.check_canonical(adr.VA_LIMIT - 1)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            adr.check_canonical(adr.VA_LIMIT)
        with pytest.raises(ValueError):
            adr.check_canonical(-1)
