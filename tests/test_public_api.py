"""Tests for the package-level public API."""

import pytest

import repro
from repro.workloads import build_workload


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_config_presets_exported(self):
        assert repro.paper_config().pcc.entries == 128
        assert repro.scaled_config().pcc.entries == 32
        assert repro.tiny_config().pcc.entries == 4


class TestQuickCompare:
    @pytest.fixture(scope="class")
    def results(self):
        workload = build_workload("BFS", scale=11)
        return repro.quick_compare(workload)

    def test_four_policies(self, results):
        assert set(results) == {"baseline", "linux-thp", "pcc", "ideal"}

    def test_expected_ordering(self, results):
        base = results["baseline"].total_cycles
        assert results["ideal"].total_cycles <= base
        assert results["pcc"].walk_rate <= results["baseline"].walk_rate

    def test_fragmentation_variant(self):
        workload = build_workload("BFS", scale=11)
        results = repro.quick_compare(workload, fragmentation=0.9)
        # under heavy fragmentation greedy THP stalls near baseline
        base = results["baseline"].total_cycles
        assert results["linux-thp"].total_cycles > 0.85 * base
