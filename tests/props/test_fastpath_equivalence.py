"""The translation fast path must be invisible in every statistic.

The memoized VPN fast path in :class:`~repro.engine.machine.
TranslationPipeline` bypasses the TLB object graph for repeated hits;
its correctness claim is *bit-identical behavior*: the same walks, the
same per-structure hit counts, the same cycles, the same promotions —
on any trace, under any interleaving, across promotion ticks and the
shootdowns they broadcast. These properties drive randomized
multi-thread traces with frequent promotion intervals through both
modes and compare the results field by field.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import tiny_config
from repro.engine.simulation import SimulationResult, Simulator
from repro.engine.system import ProcessWorkload
from repro.os.kernel import HugePagePolicy
from repro.trace.events import Trace
from tests.conftest import make_workload

BASE = 0x5555_5540_0000


def _result_fingerprint(result: SimulationResult) -> dict:
    """Every observable statistic of a run, for exact comparison."""
    return {
        "policy": result.policy,
        "total_cycles": result.total_cycles,
        "accesses": result.accesses,
        "walks": result.walks,
        "l1_hits": result.l1_hits,
        "l2_hits": result.l2_hits,
        "promotions": result.promotions,
        "demotions": result.demotions,
        "promotion_timeline": result.promotion_timeline,
        "huge_page_timeline": result.huge_page_timeline,
        "per_core": result.per_core,
        "processes": [
            (p.pid, p.name, p.accesses, p.walks, p.huge_pages,
             p.footprint_regions)
            for p in result.processes
        ],
    }


def _non_fastpath_counters(result: SimulationResult) -> dict:
    """Metrics counters minus the fast path's own instrumentation."""
    return {
        name: value
        for name, value in result.metrics["counters"].items()
        if ".fastpath." not in name
    }


@st.composite
def thread_page_streams(draw):
    """1-3 threads of bounded page accesses over a shared window.

    The window (400 pages ~ 4 x 2MB regions) is small enough that the
    tiny TLB thrashes and promotion candidates accumulate, so runs
    exercise hits, evictions, walks, faults, promotions and shootdowns.
    """
    threads = draw(st.integers(1, 3))
    streams = []
    for _ in range(threads):
        length = draw(st.integers(20, 400))
        pages = draw(
            st.lists(st.integers(0, 400), min_size=length, max_size=length)
        )
        streams.append(
            np.uint64(BASE)
            + np.array(pages, dtype=np.uint64) * np.uint64(4096)
        )
    return streams


def _workload(streams) -> ProcessWorkload:
    single = make_workload(np.concatenate(streams))
    if len(streams) == 1:
        return single
    traces = [
        Trace(
            name=f"t{i}",
            addresses=stream,
            footprint_bytes=single.footprint_bytes,
        )
        for i, stream in enumerate(streams)
    ]
    return ProcessWorkload.multi_thread(traces, single.layout, name="prop")


def _run(streams, policy, fast_path, cores=2):
    config = tiny_config(cores=cores)
    simulator = Simulator(config, policy=policy, fast_path=fast_path)
    return simulator.run([_workload(streams)])


@given(
    streams=thread_page_streams(),
    policy=st.sampled_from(
        [HugePagePolicy.NONE, HugePagePolicy.LINUX_THP, HugePagePolicy.PCC]
    ),
)
@settings(max_examples=50, deadline=None)
def test_fast_path_is_bit_identical(streams, policy):
    baseline = _run(streams, policy, fast_path=False)
    fast = _run(streams, policy, fast_path=True)
    assert _result_fingerprint(fast) == _result_fingerprint(baseline)


@given(streams=thread_page_streams())
@settings(max_examples=25, deadline=None)
def test_fast_path_metrics_counters_match(streams):
    """The metrics bus sees identical counters too (fastpath.* aside)."""
    baseline = _run(streams, HugePagePolicy.PCC, fast_path=False)
    fast = _run(streams, HugePagePolicy.PCC, fast_path=True)
    assert _non_fastpath_counters(fast) == _non_fastpath_counters(baseline)


@given(streams=thread_page_streams())
@settings(max_examples=25, deadline=None)
def test_fast_path_survives_tight_promotion_intervals(streams):
    """Frequent ticks (interval 32) maximize shootdown/invalidation
    traffic — the fast path's riskiest regime."""
    from dataclasses import replace

    config = tiny_config(cores=2)
    config = config.with_(os=replace(config.os, promote_every_accesses=32))
    results = []
    for fast_path in (False, True):
        simulator = Simulator(
            config, policy=HugePagePolicy.PCC, fast_path=fast_path
        )
        results.append(simulator.run([_workload(streams)]))
    assert _result_fingerprint(results[1]) == _result_fingerprint(results[0])
