"""Property-based tests for the tagged-PCC composite encoding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PCCConfig
from repro.virt.tagged_pcc import TaggedPCC, World

worlds = st.sampled_from([World.GUEST, World.HOST])
vm_ids = st.integers(0, 255)
tags = st.integers(0, (1 << 40) - 1)


@given(world=worlds, vm_id=vm_ids, tag=tags)
@settings(max_examples=300, deadline=None)
def test_pack_unpack_round_trip(world, vm_id, tag):
    pcc = TaggedPCC(PCCConfig(entries=4))
    packed = pcc._pack(world, vm_id, tag)
    assert TaggedPCC._unpack(packed) == (world, vm_id, tag)


@given(
    a=st.tuples(worlds, vm_ids, tags),
    b=st.tuples(worlds, vm_ids, tags),
)
@settings(max_examples=300, deadline=None)
def test_packing_is_injective(a, b):
    pcc = TaggedPCC(PCCConfig(entries=4))
    if a != b:
        assert pcc._pack(*a) != pcc._pack(*b)


@given(
    ops=st.lists(
        st.tuples(worlds, st.integers(0, 3), st.integers(0, 10)),
        max_size=150,
    )
)
@settings(max_examples=100, deadline=None)
def test_filters_partition_contents(ops):
    pcc = TaggedPCC(PCCConfig(entries=16))
    for world, vm_id, tag in ops:
        pcc.access(world, vm_id, tag)
    everything = pcc.ranked()
    guests = pcc.ranked(World.GUEST)
    hosts = pcc.ranked(World.HOST)
    assert len(guests) + len(hosts) == len(everything)
    for entry in guests:
        assert entry.world is World.GUEST
    # per-VM filters partition the world's view
    by_vm = sum(
        len(pcc.ranked(World.GUEST, vm_id=vm)) for vm in range(4)
    )
    assert by_vm == len(guests)
