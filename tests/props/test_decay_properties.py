"""Property-based tests for the PCC's decay semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PCCConfig
from repro.core.pcc import PromotionCandidateCache


@given(
    hot_hits=st.integers(1, 600),
    warm_hits=st.integers(1, 600),
    bits=st.integers(3, 8),
)
@settings(max_examples=120, deadline=None)
def test_decay_never_inverts_strict_order(hot_hits, warm_hits, bits):
    """If A is accessed strictly more often than B (interleaved), A
    never ranks below B — decay halves both simultaneously."""
    if hot_hits == warm_hits:
        hot_hits += 1
    high, low = max(hot_hits, warm_hits), min(hot_hits, warm_hits)
    pcc = PromotionCandidateCache(PCCConfig(entries=4, counter_bits=bits))
    # interleave proportionally so both accumulate under shared decay
    for i in range(high):
        pcc.access(1)
        if i * low // high != (i + 1) * low // high:
            pcc.access(2)
    freq_hot = pcc.frequency_of(1)
    freq_warm = pcc.frequency_of(2)
    assert freq_hot is not None and freq_warm is not None
    assert freq_hot >= freq_warm


@given(
    accesses=st.lists(st.integers(0, 5), min_size=1, max_size=500),
    bits=st.integers(2, 6),
)
@settings(max_examples=120, deadline=None)
def test_decay_count_bounded_by_access_count(accesses, bits):
    """Each decay requires a counter to climb to saturation, so decays
    are bounded by accesses / counter_max."""
    pcc = PromotionCandidateCache(PCCConfig(entries=8, counter_bits=bits))
    for tag in accesses:
        pcc.access(tag)
    maximum = pcc.config.counter_max
    assert pcc.stats.decays <= len(accesses) // maximum + 1


@given(accesses=st.lists(st.integers(0, 3), min_size=1, max_size=300))
@settings(max_examples=100, deadline=None)
def test_frequencies_bounded_by_hits(accesses):
    """A tag's counter can never exceed its own hit count."""
    pcc = PromotionCandidateCache(PCCConfig(entries=4))
    hits: dict[int, int] = {}
    for tag in accesses:
        entry = pcc.access(tag)
        hits[tag] = hits.get(tag, 0)
        # count hits only (first access is an insertion at freq 0)
        if entry.frequency > 0 or hits[tag] > 0:
            hits[tag] += 1
    for tag, count in hits.items():
        freq = pcc.frequency_of(tag)
        if freq is not None:
            assert freq <= max(0, count)
