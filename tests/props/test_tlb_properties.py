"""Property-based tests: the TLB against a reference LRU model."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TLBConfig
from repro.tlb.tlb import TLB
from repro.vm.address import PageSize


class ReferenceLRU:
    """Oracle: per-set LRU cache implemented with OrderedDict."""

    def __init__(self, sets, ways):
        self.sets = [OrderedDict() for _ in range(sets)]
        self.nsets = sets
        self.ways = ways

    def lookup(self, tag):
        entries = self.sets[tag % self.nsets]
        if tag in entries:
            entries.move_to_end(tag)
            return True
        return False

    def fill(self, tag):
        entries = self.sets[tag % self.nsets]
        if tag in entries:
            entries.move_to_end(tag)
            return
        if len(entries) >= self.ways:
            entries.popitem(last=False)
        entries[tag] = True

    def invalidate(self, tag):
        self.sets[tag % self.nsets].pop(tag, None)

    def resident(self):
        tags = set()
        for entries in self.sets:
            tags.update(entries)
        return tags


ops = st.lists(
    st.tuples(
        st.sampled_from(["lookup", "fill", "invalidate"]),
        st.integers(0, 40),
    ),
    max_size=400,
)


@given(trace=ops, entries_log=st.integers(1, 4), ways_log=st.integers(0, 2))
@settings(max_examples=150, deadline=None)
def test_matches_reference_lru(trace, entries_log, ways_log):
    entries = 1 << entries_log
    ways = min(entries, 1 << ways_log)
    tlb = TLB(TLBConfig(entries, ways, (PageSize.BASE,)))
    oracle = ReferenceLRU(entries // ways, ways)
    for op, tag in trace:
        if op == "lookup":
            assert tlb.lookup(tag) == oracle.lookup(tag)
        elif op == "fill":
            tlb.fill(tag, PageSize.BASE)
            oracle.fill(tag)
        else:
            tlb.invalidate(tag)
            oracle.invalidate(tag)
        assert tlb.resident_tags() == oracle.resident()
        assert tlb.occupancy() <= entries


@given(trace=ops)
@settings(max_examples=80, deadline=None)
def test_hit_fast_equivalent_to_lookup(trace):
    """hit_fast differs from lookup only in miss accounting."""
    a = TLB(TLBConfig(8, 2, (PageSize.BASE,)))
    b = TLB(TLBConfig(8, 2, (PageSize.BASE,)))
    for op, tag in trace:
        if op == "fill":
            a.fill(tag, PageSize.BASE)
            b.fill(tag, PageSize.BASE)
        elif op == "lookup":
            assert a.lookup(tag) == b.hit_fast(tag)
        else:
            a.invalidate(tag)
            b.invalidate(tag)
        assert a.resident_tags() == b.resident_tags()
    assert a.stats.hits == b.stats.hits
