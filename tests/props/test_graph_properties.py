"""Property-based tests for graph generation and traversal machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import gapbase
from repro.workloads.graph import (
    CSRGraph,
    degree_based_grouping,
    kronecker,
)


@st.composite
def csr_graphs(draw):
    """Random small valid CSR graphs."""
    nodes = draw(st.integers(2, 24))
    degrees = draw(
        st.lists(st.integers(0, 6), min_size=nodes, max_size=nodes)
    )
    offsets = np.zeros(nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    edges = int(offsets[-1])
    neighbors = np.array(
        draw(
            st.lists(
                st.integers(0, nodes - 1), min_size=edges, max_size=edges
            )
        ),
        dtype=np.int32,
    )
    return CSRGraph(offsets=offsets, neighbors=neighbors)


@given(graph=csr_graphs())
@settings(max_examples=80, deadline=None)
def test_dbg_preserves_degree_multiset(graph):
    reordered = degree_based_grouping(graph)
    reordered.validate()
    assert sorted(graph.degrees().tolist()) == sorted(
        reordered.degrees().tolist()
    )
    assert reordered.edges == graph.edges


@given(graph=csr_graphs(), data=st.data())
@settings(max_examples=80, deadline=None)
def test_expand_edges_matches_manual_expansion(graph, data):
    size = data.draw(st.integers(0, graph.nodes))
    frontier = np.array(
        sorted(
            data.draw(
                st.sets(
                    st.integers(0, graph.nodes - 1),
                    min_size=size,
                    max_size=size,
                )
            )
        ),
        dtype=np.int64,
    )
    edge_indices, targets = gapbase.expand_edges(graph, frontier)
    expected_indices = []
    for vertex in frontier:
        expected_indices.extend(
            range(int(graph.offsets[vertex]), int(graph.offsets[vertex + 1]))
        )
    assert edge_indices.tolist() == expected_indices
    assert np.array_equal(targets, graph.neighbors[edge_indices])


@given(scale=st.integers(4, 9), seed=st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_kronecker_always_valid(scale, seed):
    graph = kronecker(scale=scale, degree=4, seed=seed)
    graph.validate()
    assert graph.nodes == 1 << scale
    # dedup guarantees no duplicate (src, dst) pairs
    src = np.repeat(
        np.arange(graph.nodes, dtype=np.int64), graph.degrees()
    )
    keys = src * graph.nodes + graph.neighbors
    assert np.unique(keys).size == keys.size


@given(
    streams=st.lists(
        st.lists(st.integers(0, 1 << 40), min_size=1, max_size=30),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=80, deadline=None)
def test_interleave_streams_round_trips(streams):
    length = min(len(s) for s in streams)
    arrays = [np.array(s[:length], dtype=np.uint64) for s in streams]
    merged = gapbase.interleave_streams(*arrays)
    assert merged.size == length * len(arrays)
    for column, original in enumerate(arrays):
        assert np.array_equal(merged[column :: len(arrays)], original)
