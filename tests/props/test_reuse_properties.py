"""Property-based tests for reuse-distance computation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reuse import reuse_distances

sequences = st.lists(st.integers(0, 12), max_size=300)


def oracle(seq):
    """Quadratic reference: mean count of intervening accesses."""
    result = {}
    positions = {}
    for index, region in enumerate(seq):
        positions.setdefault(region, []).append(index)
    for region, where in positions.items():
        if len(where) == 1:
            result[region] = float("inf")
        else:
            gaps = [b - a - 1 for a, b in zip(where, where[1:])]
            result[region] = sum(gaps) / len(gaps)
    return result


@given(seq=sequences)
@settings(max_examples=200, deadline=None)
def test_matches_quadratic_oracle(seq):
    assert reuse_distances(np.array(seq, dtype=np.int64)) == oracle(seq)


@given(seq=sequences)
@settings(max_examples=100, deadline=None)
def test_every_touched_region_reported(seq):
    distances = reuse_distances(np.array(seq, dtype=np.int64))
    assert set(distances) == set(seq)


@given(seq=st.lists(st.integers(0, 3), min_size=2, max_size=100))
@settings(max_examples=100, deadline=None)
def test_distances_bounded_by_sequence_length(seq):
    distances = reuse_distances(np.array(seq, dtype=np.int64))
    for value in distances.values():
        assert value == float("inf") or 0 <= value <= len(seq) - 2
