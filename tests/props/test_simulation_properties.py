"""Property-based end-to-end invariants of the simulation loop."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import tiny_config
from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy
from tests.conftest import make_workload

BASE = 0x5555_5540_0000


@st.composite
def page_streams(draw):
    """Random bounded page-access streams over a modest window."""
    length = draw(st.integers(10, 600))
    pages = draw(
        st.lists(
            st.integers(0, 200), min_size=length, max_size=length
        )
    )
    return np.uint64(BASE) + np.array(pages, dtype=np.uint64) * np.uint64(4096)


@given(addresses=page_streams(), policy=st.sampled_from(
    [HugePagePolicy.NONE, HugePagePolicy.PCC, HugePagePolicy.IDEAL]
))
@settings(max_examples=60, deadline=None)
def test_run_invariants(addresses, policy):
    simulator = Simulator(tiny_config(), policy=policy)
    result = simulator.run([make_workload(addresses)])
    # conservation: every access is served at exactly one level
    assert result.accesses == len(addresses)
    assert result.walks + result.l1_hits + result.l2_hits == result.accesses
    assert 0.0 <= result.walk_rate <= 1.0
    assert result.total_cycles >= result.accesses  # base cost floor
    # page-table state consistent with reported promotions
    table = simulator.kernel.processes[1].page_table
    if policy is HugePagePolicy.PCC:
        assert result.promotions == len(table.promoted_regions())
    # every touched page remains translatable at the end
    for vpn in np.unique(addresses >> np.uint64(12))[:16]:
        assert table.translate(int(vpn) << 12) is not None


@given(addresses=page_streams())
@settings(max_examples=40, deadline=None)
def test_policy_walk_ordering(addresses):
    """Walk counts obey NONE >= PCC >= IDEAL walk-rate expectations
    (huge-page policies can only remove walks, never add them)."""
    counts = {}
    for policy in (HugePagePolicy.NONE, HugePagePolicy.IDEAL):
        result = Simulator(tiny_config(), policy=policy).run(
            [make_workload(addresses)]
        )
        counts[policy] = result.walks
    assert counts[HugePagePolicy.IDEAL] <= counts[HugePagePolicy.NONE]
