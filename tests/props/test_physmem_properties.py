"""Property-based tests: physical memory conservation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.os.physmem import (
    FrameState,
    OutOfMemoryError,
    PhysicalMemory,
)
from repro.vm.address import HUGE_PAGE_SIZE, PAGES_PER_HUGE

commands = st.lists(
    st.one_of(
        st.tuples(st.just("base"), st.integers(1, 64)),
        st.tuples(st.just("huge"), st.booleans()),
        st.tuples(st.just("release"), st.integers(1, 64)),
        st.tuples(st.just("free_huge"), st.integers(0, PAGES_PER_HUGE)),
        st.tuples(st.just("fragment"), st.floats(0.0, 1.0)),
    ),
    max_size=60,
)


@given(cmds=commands, frames=st.integers(2, 12))
@settings(max_examples=120, deadline=None)
def test_frame_accounting_invariants(cmds, frames):
    mem = PhysicalMemory(frames * HUGE_PAGE_SIZE)
    fragmented = False
    held_huge: list[int] = []
    for cmd, arg in cmds:
        try:
            if cmd == "base":
                mem.allocate_base(count=arg)
            elif cmd == "huge":
                frame, migrated = mem.allocate_huge(allow_compaction=arg)
                held_huge.append(frame)
                assert migrated >= 0
            elif cmd == "release":
                released = mem.release_base_pages(arg)
                assert 0 <= released <= arg
            elif cmd == "free_huge":
                if held_huge:
                    mem.free_huge(held_huge.pop(), as_base_pages=arg)
            elif cmd == "fragment" and not fragmented:
                mem.fragment(arg)
                fragmented = True
        except OutOfMemoryError:
            pass

        # global invariants after every operation
        states = [f.state for f in mem._frames]
        assert len(states) == frames
        for frame in mem._frames:
            assert 0 <= frame.pinned_pages <= frame.used_base_pages
            assert frame.used_base_pages <= PAGES_PER_HUGE
            if frame.state is FrameState.FREE:
                assert frame.used_base_pages == 0
            if frame.state is FrameState.PARTIAL:
                assert frame.used_base_pages >= 1
        assert (
            mem.free_huge_frames()
            + mem.huge_frames_in_use()
            + sum(1 for s in states if s is FrameState.PARTIAL)
            == frames
        )


@given(
    fraction=st.floats(0.0, 1.0),
    frames=st.integers(2, 32),
)
@settings(max_examples=80, deadline=None)
def test_fragmentation_pin_count(fraction, frames):
    mem = PhysicalMemory(frames * HUGE_PAGE_SIZE)
    pinned = mem.fragment(fraction)
    assert pinned == round(frames * fraction)
    # pinned frames can never be compacted away
    assert mem.compactable_frames() <= frames - pinned
