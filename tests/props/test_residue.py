"""The residue pipeline's load-bearing properties.

PR 7 retires the columnar epoch's L1-miss residue as array passes: the
unified L2 and the per-level page-walk caches become classified LRU
streams (:mod:`repro.engine.residue`), and multi-thread rounds retire
as per-core epochs. Three things must hold exactly:

1. **Vectorized L2 retirement is exact.** Classification plus
   end-of-epoch reconstruction (contents, stored entry values, LRU
   order, evictions) must agree with a scalar replay of the
   hierarchy's probe-refresh/fill-on-miss sequence against a real
   :class:`~repro.tlb.tlb.TLB`.

2. **PWC classification is exact.** :func:`residue.pwc_level_outcomes`
   must agree with the walker's sequential memo-then-LRU probe loop on
   outcomes, end contents, evictions, and the memo's final value —
   and the optional JIT kernel must change nothing but the speed.

3. **Multi-thread epochs are invisible.** With 2+ runnable threads the
   columnar tier must stay bit-identical to the scalar reference on
   the fuzz corpus, while demonstrably engaging the multi-thread
   epoch path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TLBConfig
from repro.engine import residue
from repro.engine.columnar import classify_lru_hits, epoch_evictions
from repro.tlb.tlb import TLB
from repro.vm.address import PageSize

_ENTRY_BASE = int(PageSize.BASE)
_ENTRY_HUGE = int(PageSize.HUGE)


def _stack_arrays(initial):
    sets_out, tags_out = [], []
    for s, stack in enumerate(initial):
        sets_out.extend([s] * len(stack))
        tags_out.extend(stack)
    return (
        np.asarray(sets_out, dtype=np.intp),
        np.asarray(tags_out, dtype=np.uint64),
    )


# ----------------------------------------------------------------------
# 1. vectorized L2 classification + reconstruction == scalar replay


@st.composite
def l2_epochs(draw):
    """Geometry, a prefill sequence, and a mixed 4K/2MB probe stream."""
    nsets = draw(st.sampled_from((1, 2, 4, 8)))
    ways = draw(st.integers(1, 6))
    vocab = draw(st.integers(1, 48))
    n = draw(st.integers(0, 250))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    tags = rng.integers(0, vocab, size=n).astype(np.uint64)
    kinds = rng.integers(0, 2, size=n).astype(bool)
    prefill = [
        (int(t), bool(k))
        for t, k in zip(
            rng.integers(0, vocab, size=int(rng.integers(0, nsets * ways + 1))),
            rng.integers(0, 2, size=nsets * ways + 1),
        )
    ]
    return nsets, ways, tags, kinds, prefill


def _scalar_l2_replay(tlb, tags, kinds):
    """The hierarchy's L2 usage: probe-refresh on hit, fill on miss."""
    hits = np.zeros(tags.size, dtype=bool)
    nsets = tlb.nsets
    sets = tlb.sets
    for i, (tag, kind) in enumerate(zip(tags.tolist(), kinds.tolist())):
        entries = sets[tag % nsets]
        value = entries.get(tag)
        if value is not None:
            del entries[tag]
            entries[tag] = value
            hits[i] = True
        else:
            tlb.fill(tag, _ENTRY_HUGE if kind else _ENTRY_BASE)
    return hits


@given(epoch=l2_epochs())
@settings(max_examples=150, deadline=None)
def test_vectorized_l2_matches_scalar_replay(epoch):
    nsets, ways, tags, kinds, prefill = epoch
    tlb = TLB(TLBConfig(nsets * ways, ways, (PageSize.BASE,)), "L2")
    for tag, kind in prefill:
        if tag not in tlb.sets[tag % nsets]:
            tlb.fill(tag, _ENTRY_HUGE if kind else _ENTRY_BASE)

    # Snapshot, then classify/reconstruct the way _epoch_finish does.
    initial = [list(entries) for entries in tlb.sets]
    value_of = {}
    for entries in tlb.sets:
        value_of.update(entries)
    set_ids = (tags % np.uint64(nsets)).astype(np.intp)
    init_sets, init_tags = _stack_arrays(initial)
    hits, _, final = classify_lru_hits(
        set_ids, tags, ways, init_sets, init_tags, nsets=nsets
    )
    occ0 = np.fromiter((len(s) for s in initial), np.int64, nsets)
    evictions = epoch_evictions(set_ids[~hits], nsets, ways, occ0)
    miss = ~hits
    for tag, kind in zip(tags[miss].tolist(), kinds[miss].tolist()):
        value_of[tag] = _ENTRY_HUGE if kind else _ENTRY_BASE

    base_evictions = tlb.stats.evictions
    ref_hits = _scalar_l2_replay(tlb, tags, kinds)

    np.testing.assert_array_equal(hits, ref_hits)
    assert evictions == tlb.stats.evictions - base_evictions
    for s, entries in enumerate(tlb.sets):
        assert list(entries) == list(final[s])  # contents, LRU->MRU
        assert entries == {tag: value_of[tag] for tag in entries}


# ----------------------------------------------------------------------
# 2. PWC level classification == the walker's sequential probe loop


@st.composite
def pwc_epochs(draw):
    """One PWC level's epoch: geometry, memo seed, repeat-heavy tags."""
    nsets = draw(st.sampled_from((1, 2, 4)))
    ways = draw(st.integers(1, 4))
    vocab = draw(st.integers(1, 20))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    # Upper-level tags repeat for long stretches; build runs so the
    # memo path is exercised hard.
    runs = int(rng.integers(0, 60))
    tags: list[int] = []
    for _ in range(runs):
        tags.extend([int(rng.integers(0, vocab))] * int(rng.integers(1, 6)))
    last_tag = int(rng.integers(0, vocab)) if rng.integers(0, 2) else -1
    prefill = [int(t) for t in rng.integers(0, vocab, size=int(rng.integers(0, nsets * ways + 1)))]
    return nsets, ways, tags, last_tag, prefill


@given(epoch=pwc_epochs())
@settings(max_examples=150, deadline=None)
def test_pwc_level_outcomes_match_sequential_walker(epoch):
    nsets, ways, tags, last_tag, prefill = epoch
    pwc = TLB(TLBConfig(nsets * ways, ways, (PageSize.BASE,)), "PWC")
    for tag in prefill:
        if not pwc.hit_fast(tag):
            pwc.fill(tag, PageSize.BASE)
    initial = [list(entries) for entries in pwc.sets]

    outcomes, contents, evictions, final_last = residue.pwc_level_outcomes(
        np.asarray(tags, dtype=np.int64), last_tag, initial, nsets, ways
    )

    # The walker's inline sequence: memo, then pwc.lookup / pwc.fill.
    base_evictions = pwc.stats.evictions
    last = last_tag
    ref = []
    for tag in tags:
        if tag == last:
            ref.append(0)
            continue
        if pwc.lookup(tag):
            ref.append(1)
        else:
            pwc.fill(tag, PageSize.BASE)
            ref.append(2)
        last = tag

    assert outcomes.tolist() == ref
    assert [list(entries) for entries in pwc.sets] == \
        [list(stack) for stack in contents]
    assert evictions == pwc.stats.evictions - base_evictions
    assert final_last == last


@given(epoch=pwc_epochs())
@settings(max_examples=40, deadline=None)
def test_walk_kernel_matches_numpy_path(epoch):
    """REPRO_JIT=1 must change nothing but the speed."""
    import os

    from repro.engine import jit

    if not jit.available():
        pytest.skip("numba not installed; pure-numpy fallback covered above")
    nsets, ways, tags, last_tag, prefill = epoch
    pwc = TLB(TLBConfig(nsets * ways, ways, (PageSize.BASE,)), "PWC")
    for tag in prefill:
        if not pwc.hit_fast(tag):
            pwc.fill(tag, PageSize.BASE)
    initial = [list(entries) for entries in pwc.sets]
    tag_arr = np.asarray(tags, dtype=np.int64)

    base = residue.pwc_level_outcomes(tag_arr, last_tag, initial, nsets, ways)
    previous = os.environ.get("REPRO_JIT")
    os.environ["REPRO_JIT"] = "1"
    try:
        jitted = residue.pwc_level_outcomes(
            tag_arr, last_tag, initial, nsets, ways
        )
    finally:
        if previous is None:
            del os.environ["REPRO_JIT"]
        else:
            os.environ["REPRO_JIT"] = previous

    np.testing.assert_array_equal(jitted[0], base[0])
    assert [list(s) for s in jitted[1]] == [list(s) for s in base[1]]
    assert jitted[2] == base[2]
    assert jitted[3] == base[3]


# ----------------------------------------------------------------------
# 3. the L2 aliasing pre-check


def _arr(values):
    return np.asarray(values, dtype=np.uint64)


def test_alias_conflict_empty_is_clean():
    assert not residue.l2_alias_conflict(
        _arr([]), _arr([]), _arr([]), _arr([]), serves_huge=True
    )


def test_alias_conflict_disjoint_tags_are_clean():
    assert not residue.l2_alias_conflict(
        _arr([1000]), _arr([1, 2]), _arr([3000]), _arr([5000]),
        serves_huge=True,
    )


def test_alias_conflict_huge_vpn_hits_resident_tag():
    # A huge-backed record's silent 4K probe collides with a resident.
    assert residue.l2_alias_conflict(
        _arr([5]), _arr([]), _arr([5]), _arr([]), serves_huge=False
    )


def test_alias_conflict_base_huge_tag_collides_with_base_vpn():
    # A 4K record's silent 2MB-tag probe (512 >> 9 == 1) collides with
    # another 4K record's modelled fill at VPN 1 — only when the L2
    # serves huge entries and so performs that probe at all.
    assert residue.l2_alias_conflict(
        _arr([]), _arr([512, 1]), _arr([]), _arr([]), serves_huge=True
    )
    assert not residue.l2_alias_conflict(
        _arr([]), _arr([512, 1]), _arr([]), _arr([]), serves_huge=False
    )


def test_alias_conflict_giga_record_probes():
    assert residue.l2_alias_conflict(
        _arr([7]), _arr([]), _arr([]), _arr([7]), serves_huge=False
    )
    # 1GB record's 2MB-tag probe: 1024 >> 9 == 2.
    assert residue.l2_alias_conflict(
        _arr([2]), _arr([]), _arr([]), _arr([1024]), serves_huge=True
    )
    assert not residue.l2_alias_conflict(
        _arr([2]), _arr([]), _arr([]), _arr([1024]), serves_huge=False
    )


# ----------------------------------------------------------------------
# 4. multi-thread epochs: bit-identical and demonstrably engaged


def _tier_fingerprint(result) -> tuple:
    return (
        result.policy,
        result.total_cycles,
        result.accesses,
        result.walks,
        result.l1_hits,
        result.l2_hits,
        result.promotions,
        result.demotions,
        tuple(result.promotion_timeline),
        tuple(tuple(sorted(t.items())) for t in result.huge_page_timeline),
    )


@pytest.mark.parametrize("seed", range(0, 51))
def test_multithread_columnar_is_bit_identical_to_scalar(seed):
    """Seeds 0..50 with a 2-thread floor: every observable matches."""
    from repro.validation.generators import generate_case
    from repro.validation.oracle import run_case

    case = generate_case(seed, min_threads=2)
    assert len(case.threads) >= 2
    _, scalar = run_case(case, tier="scalar", validate=False)
    _, columnar = run_case(case, tier="columnar", validate=False)
    assert _tier_fingerprint(columnar) == _tier_fingerprint(scalar)


def test_multithread_epochs_engage():
    """The sweep above must actually exercise the multi-thread path."""
    from repro.validation.generators import generate_case
    from repro.validation.oracle import run_case

    case = generate_case(0, min_threads=2)
    _, result = run_case(case, tier="columnar", validate=False)
    counters = (result.metrics or {}).get("counters", {})
    mt = sum(v for k, v in counters.items()
             if k.endswith("columnar_mt_epochs"))
    batched = sum(v for k, v in counters.items()
                  if k.endswith("columnar_faults_batched"))
    retired = sum(v for k, v in counters.items()
                  if k.endswith("columnar_l2_retired"))
    assert mt > 0
    assert batched > 0
    assert retired > 0


def test_min_threads_default_preserves_historical_cases():
    """The floor is applied after the draw: seed streams are stable."""
    from repro.validation.generators import generate_case

    assert generate_case(3).case_id == generate_case(3, min_threads=1).case_id
