"""The columnar epoch tier's two load-bearing properties.

1. **Encoding is lossless.** :class:`~repro.engine.columnar.ColumnarStream`
   must round-trip the exact original access stream — record-for-record
   and access-for-access — for every workload in the registry, for
   arbitrary fuzzed streams, and through the content-addressed trace
   cache.

2. **Classification is exact.** The vectorized whole-epoch LRU
   classifier (and its optional JIT kernel) must agree with a direct
   per-set LRU simulation on hits, and its epoch-end reconstruction
   must agree on final per-set contents — for any set count, way count,
   tag vocabulary, and initial residency.

On top of those unit properties, the tier's end-to-end contract is
pinned the same way the fast and batch tiers are: bit-identical
simulation statistics against the scalar reference on the validation
fuzz corpus (seeds 0..50; the CI oracle sweep covers 0..199).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.columnar import (
    ColumnarStream,
    classify_lru_hits,
    classify_lru_hits_ref,
    final_lru_contents,
)
from repro.workloads.registry import (
    EXTENDED_WORKLOADS,
    workload_names,
)

#: small-but-real builds: every registry workload at a scale the suite
#: can afford (graph apps take a scale, proxies an access budget)
_TINY_SCALE = 10
_TINY_ACCESSES = 20_000


def _tiny_workload(name: str):
    from repro.workloads.registry import build_workload

    return build_workload(name, scale=_TINY_SCALE, accesses=_TINY_ACCESSES)


# ----------------------------------------------------------------------
# 1. encode -> decode round-trips exactly


@pytest.mark.parametrize(
    "name", list(workload_names()) + list(EXTENDED_WORKLOADS)
)
def test_encode_round_trips_every_registry_workload(name):
    """Whole-stream encoding loses nothing, workload by workload."""
    workload = _tiny_workload(name)
    for thread in workload.threads:
        trace = thread.trace
        stream = ColumnarStream.from_trace(trace)
        vpns, counts = stream.decode()
        np.testing.assert_array_equal(vpns, trace.vpns)
        np.testing.assert_array_equal(counts, trace.counts)
        assert stream.total_accesses == trace.total_accesses
        # The per-access expansion reproduces the raw page stream.
        np.testing.assert_array_equal(
            stream.expand(), np.repeat(trace.vpns, trace.counts)
        )
        # Derived columns are consistent with the records they index.
        np.testing.assert_array_equal(
            stream.htags, trace.vpns >> np.uint64(9)
        )
        np.testing.assert_array_equal(
            stream.page_tags[stream.page_ridx], trace.vpns
        )
        np.testing.assert_array_equal(
            stream.region_tags[stream.region_ridx], stream.htags
        )


@given(
    vpns=st.lists(st.integers(0, 1 << 36), min_size=0, max_size=200),
    counts=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_encode_round_trips_fuzzed_streams(vpns, counts):
    n = len(vpns)
    runs = counts.draw(
        st.lists(st.integers(1, 1_000), min_size=n, max_size=n)
    )
    vpns = np.asarray(vpns, dtype=np.uint64)
    runs = np.asarray(runs, dtype=np.int64)
    stream = ColumnarStream.encode(vpns, runs)
    out_vpns, out_counts = stream.decode()
    np.testing.assert_array_equal(out_vpns, vpns)
    np.testing.assert_array_equal(out_counts, runs)
    assert stream.total_accesses == int(runs.sum())
    assert len(stream) == n


def test_encode_round_trips_through_trace_cache(tmp_path):
    """A cache miss then a mmap-backed hit decode identically."""
    from repro.trace.cache import TraceCache

    workload = _tiny_workload("BFS")
    trace = workload.threads[0].trace
    direct = ColumnarStream.from_trace(trace)
    cold = ColumnarStream.from_trace(trace, cache=TraceCache(tmp_path))
    warm = ColumnarStream.from_trace(trace, cache=TraceCache(tmp_path))
    for stream in (cold, warm):
        np.testing.assert_array_equal(stream.vpns, direct.vpns)
        np.testing.assert_array_equal(stream.counts, direct.counts)
        np.testing.assert_array_equal(stream.htags, direct.htags)
        np.testing.assert_array_equal(stream.page_tags, direct.page_tags)
        np.testing.assert_array_equal(stream.page_ridx, direct.page_ridx)
        np.testing.assert_array_equal(
            stream.region_tags, direct.region_tags
        )
        np.testing.assert_array_equal(
            stream.region_ridx, direct.region_ridx
        )


# ----------------------------------------------------------------------
# 2. the whole-epoch LRU classifier is exact


@st.composite
def lru_epochs(draw):
    """One structure's epoch: geometry, initial residency, touches."""
    nsets = draw(st.integers(1, 8))
    ways = draw(st.integers(1, 8))
    vocab = draw(st.integers(1, 60))
    n = draw(st.integers(0, 400))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    tags = rng.integers(0, vocab, size=n, dtype=np.int64)
    set_ids = tags % nsets
    initial: list[list[int]] = []
    for s in range(nsets):
        residents = [
            int(t) for t in rng.permutation(vocab)[: rng.integers(0, ways + 1)]
            if int(t) % nsets == s
        ]
        initial.append(residents)
    return nsets, ways, set_ids, tags, initial


def _init_arrays(initial):
    init_set_ids = []
    init_tags = []
    for s, stack in enumerate(initial):
        for tag in stack:
            init_set_ids.append(s)
            init_tags.append(tag)
    return (
        np.asarray(init_set_ids, dtype=np.int64),
        np.asarray(init_tags, dtype=np.int64),
    )


@given(epoch=lru_epochs())
@settings(max_examples=200, deadline=None)
def test_classifier_matches_per_set_lru_simulation(epoch):
    nsets, ways, set_ids, tags, initial = epoch
    init_set_ids, init_tags = _init_arrays(initial)
    hits, _, contents = classify_lru_hits(
        set_ids, tags, ways, init_set_ids, init_tags, nsets=nsets
    )
    expected = classify_lru_hits_ref(set_ids, tags, ways, initial)
    np.testing.assert_array_equal(hits, expected)
    assert contents == final_lru_contents(
        set_ids, tags, nsets, ways, initial
    )


@given(epoch=lru_epochs())
@settings(max_examples=50, deadline=None)
def test_jit_kernel_matches_numpy_classifier(epoch):
    """REPRO_JIT=1 must change nothing but the speed."""
    import os

    from repro.engine import jit

    if not jit.available():
        pytest.skip("numba not installed; pure-numpy fallback covered above")
    nsets, ways, set_ids, tags, initial = epoch
    init_set_ids, init_tags = _init_arrays(initial)
    base_hits, _, base_contents = classify_lru_hits(
        set_ids, tags, ways, init_set_ids, init_tags, nsets=nsets
    )
    previous = os.environ.get("REPRO_JIT")
    os.environ["REPRO_JIT"] = "1"
    try:
        jit_hits, _, jit_contents = classify_lru_hits(
            set_ids, tags, ways, init_set_ids, init_tags, nsets=nsets
        )
    finally:
        if previous is None:
            del os.environ["REPRO_JIT"]
        else:
            os.environ["REPRO_JIT"] = previous
    np.testing.assert_array_equal(jit_hits, base_hits)
    assert jit_contents == base_contents


# ----------------------------------------------------------------------
# 3. end-to-end: columnar == scalar on the validation fuzz corpus


def _tier_fingerprint(result) -> tuple:
    return (
        result.policy,
        result.total_cycles,
        result.accesses,
        result.walks,
        result.l1_hits,
        result.l2_hits,
        result.promotions,
        result.demotions,
        tuple(result.promotion_timeline),
        tuple(tuple(sorted(t.items())) for t in result.huge_page_timeline),
    )


@pytest.mark.parametrize("seed", range(0, 51))
def test_columnar_is_bit_identical_to_scalar_on_fuzz_corpus(seed):
    """Seeds 0..50 of the oracle's corpus: every observable matches."""
    from repro.validation.generators import generate_case
    from repro.validation.oracle import run_case

    case = generate_case(seed)
    _, scalar = run_case(case, tier="scalar", validate=False)
    _, columnar = run_case(case, tier="columnar", validate=False)
    assert _tier_fingerprint(columnar) == _tier_fingerprint(scalar)
