"""The vectorized batch path must be invisible in every statistic.

The batch mode of :class:`~repro.engine.machine.TranslationPipeline`
bulk-retires runs of records proven to be tier-1 memo hits from a
once-per-window retirement mask (previous-same-set links, the hint
barrier, and per-region mapping state). Its correctness claim is the
same as the fast path's, one level up: *bit-identical behavior* to
both the per-record fast path and the scalar reference — the same
walks, per-structure hits, cycles, promotions, demotions, and
timelines, on any trace, under any interleaving, across promotion
ticks, demotions, fragmentation, and 1GB promotions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import tiny_config
from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy, KernelParams
from tests.props.test_fastpath_equivalence import (
    _non_fastpath_counters,
    _result_fingerprint,
    _workload,
    thread_page_streams,
)

BASE = 0x5555_5540_0000

POLICIES = [
    HugePagePolicy.NONE,
    HugePagePolicy.LINUX_THP,
    HugePagePolicy.HAWKEYE,
    HugePagePolicy.PCC,
    HugePagePolicy.IDEAL,
]


@st.composite
def bursty_page_streams(draw):
    """1-2 threads alternating hot bursts with random strides.

    Bursts over a handful of pages produce the long same-set repeat
    runs the batch path retires in bulk; the random tail fragments the
    mask so retire runs and scalar gaps interleave within one window.
    """
    threads = draw(st.integers(1, 2))
    streams = []
    for _ in range(threads):
        pages: list[int] = []
        for _ in range(draw(st.integers(1, 4))):
            hot = draw(st.integers(0, 40))
            burst = draw(st.integers(4, 60))
            stride = draw(st.integers(0, 2))
            pages.extend(hot + (k % 3) * stride for k in range(burst))
            tail = draw(
                st.lists(st.integers(0, 700), min_size=0, max_size=30)
            )
            pages.extend(tail)
        streams.append(
            np.uint64(BASE)
            + np.array(pages, dtype=np.uint64) * np.uint64(4096)
        )
    return streams


def _run(streams, policy, *, batch, fast_path=True, config=None,
         params=None, fragmentation=0.0):
    config = config or tiny_config(cores=2)
    simulator = Simulator(
        config,
        policy=policy,
        params=params,
        fragmentation=fragmentation,
        fast_path=fast_path,
        batch=batch,
    )
    return simulator.run([_workload(streams)])


@given(streams=thread_page_streams(), policy=st.sampled_from(POLICIES))
@settings(max_examples=50, deadline=None)
def test_batch_is_bit_identical_to_scalar(streams, policy):
    baseline = _run(streams, policy, batch=False, fast_path=False)
    batched = _run(streams, policy, batch=True)
    assert _result_fingerprint(batched) == _result_fingerprint(baseline)


@given(streams=bursty_page_streams(), policy=st.sampled_from(POLICIES))
@settings(max_examples=50, deadline=None)
def test_batch_is_bit_identical_on_bursty_streams(streams, policy):
    """Retire-heavy traces: long bulk runs interleaved with gaps."""
    fast = _run(streams, policy, batch=False)
    batched = _run(streams, policy, batch=True)
    assert _result_fingerprint(batched) == _result_fingerprint(fast)


@given(streams=bursty_page_streams())
@settings(max_examples=25, deadline=None)
def test_batch_metrics_counters_match(streams):
    """The metrics bus sees identical counters too (fastpath.* aside)."""
    baseline = _run(streams, HugePagePolicy.PCC, batch=False,
                    fast_path=False)
    batched = _run(streams, HugePagePolicy.PCC, batch=True)
    assert _non_fastpath_counters(batched) == _non_fastpath_counters(baseline)


@given(streams=bursty_page_streams())
@settings(max_examples=25, deadline=None)
def test_batch_survives_tight_promotion_intervals(streams):
    """Frequent ticks (interval 32) bump the epoch almost every window,
    constantly resetting the hint barrier behind the link arrays."""
    from dataclasses import replace

    config = tiny_config(cores=2)
    config = config.with_(os=replace(config.os, promote_every_accesses=32))
    fast = _run(streams, HugePagePolicy.PCC, batch=False, config=config)
    batched = _run(streams, HugePagePolicy.PCC, batch=True, config=config)
    assert _result_fingerprint(batched) == _result_fingerprint(fast)


@given(
    streams=bursty_page_streams(),
    fragmentation=st.sampled_from([0.5, 0.9]),
)
@settings(max_examples=25, deadline=None)
def test_batch_survives_fragmentation_and_demotion(streams, fragmentation):
    """Fragmented memory forces fault-time huge failures and demotion
    churn — the region-state transitions the window mask must respect."""
    config = tiny_config(cores=2)
    params = KernelParams(
        regions_to_promote=config.os.regions_to_promote,
        demotion_enabled=True,
    )
    fast = _run(streams, HugePagePolicy.PCC, batch=False, params=params,
                fragmentation=fragmentation)
    batched = _run(streams, HugePagePolicy.PCC, batch=True, params=params,
                   fragmentation=fragmentation)
    assert _result_fingerprint(batched) == _result_fingerprint(fast)


def test_batch_handles_giga_promoted_regions():
    """1GB-backed regions are answered by a structure the MRU hints do
    not cover; the mask must leave them to the scalar span."""
    from repro.experiments.ablations import giant_span_workload
    from repro.experiments.common import config_for

    workload = giant_span_workload(giga_regions=2, accesses=20_000)
    config = config_for(workload)
    results = []
    for batch in (False, True):
        import copy

        sim = Simulator(config, policy=HugePagePolicy.PCC, batch=batch)
        results.append(sim.run([copy.deepcopy(workload)]))
    assert _result_fingerprint(results[1]) == _result_fingerprint(results[0])


def test_batch_escape_hatch_selects_per_record_loop():
    """batch=False must leave the batch counters untouched."""
    rng = np.random.default_rng(7)
    pages = rng.integers(0, 64, size=4_000)
    streams = [
        np.uint64(BASE) + pages.astype(np.uint64) * np.uint64(4096)
    ]
    sim = Simulator(tiny_config(), policy=HugePagePolicy.PCC, batch=False)
    sim.run([_workload(streams)])
    pipeline = sim.machine.pipelines[0]
    assert pipeline.batch_retired == 0
    assert pipeline.batch_scalar_records == 0

    sim = Simulator(tiny_config(), policy=HugePagePolicy.PCC, batch=True)
    sim.run([_workload(streams)])
    pipeline = sim.machine.pipelines[0]
    assert pipeline.batch_retired > 0
