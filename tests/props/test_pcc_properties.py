"""Property-based tests for the PCC's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PCCConfig
from repro.core.pcc import PromotionCandidateCache

tags = st.integers(min_value=0, max_value=50)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("access"), tags),
        st.tuples(st.just("invalidate"), tags),
    ),
    max_size=300,
)


@given(ops=operations, entries=st.integers(2, 16), bits=st.integers(2, 8))
@settings(max_examples=150, deadline=None)
def test_structural_invariants(ops, entries, bits):
    """Capacity, counter range, and stats consistency always hold."""
    pcc = PromotionCandidateCache(PCCConfig(entries=entries, counter_bits=bits))
    maximum = pcc.config.counter_max
    for op, tag in ops:
        if op == "access":
            pcc.access(tag)
        else:
            pcc.invalidate(tag)
        assert len(pcc) <= entries
        assert all(0 <= e.frequency <= maximum for e in pcc.ranked())
    stats = pcc.stats
    assert stats.hits + stats.misses == stats.accesses
    assert stats.insertions - stats.evictions - stats.invalidations == len(pcc)


@given(ops=operations)
@settings(max_examples=100, deadline=None)
def test_ranked_is_sorted_by_frequency(ops):
    pcc = PromotionCandidateCache(PCCConfig(entries=8))
    for op, tag in ops:
        if op == "access":
            pcc.access(tag)
        else:
            pcc.invalidate(tag)
    frequencies = [e.frequency for e in pcc.ranked()]
    assert frequencies == sorted(frequencies, reverse=True)


@given(
    hot=st.integers(0, 9),
    accesses=st.lists(st.integers(0, 9), min_size=30, max_size=200),
)
@settings(max_examples=100, deadline=None)
def test_hottest_tag_survives(hot, accesses):
    """A tag accessed at least as often as every other tag combined is
    never evicted once it has nonzero frequency."""
    pcc = PromotionCandidateCache(PCCConfig(entries=4))
    pcc.access(hot)
    pcc.access(hot)
    for tag in accesses:
        pcc.access(hot)
        pcc.access(tag)
        assert hot in pcc


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_flush_empties_and_preserves_order(ops):
    pcc = PromotionCandidateCache(PCCConfig(entries=8))
    for op, tag in ops:
        if op == "access":
            pcc.access(tag)
    dumped = pcc.flush()
    assert len(pcc) == 0
    frequencies = [e.frequency for e in dumped]
    assert frequencies == sorted(frequencies, reverse=True)
