"""Property-based tests: the tree-PLRU bitmask vs a brute-force tree.

``repro.tlb.plru`` packs the PLRU tree into one heap-indexed int per
set — fast, but every bit-twiddle is a proof obligation. The oracle
here is :class:`repro.validation.reference._PLRUTree`, a deliberately
naive linked-node tree written independently for the reference TLB
model; agreement between the two on arbitrary touch sequences (plus a
handful of closed-form PLRU laws) is what lets the production encoding
be trusted, including the awkward cases: 1-way sets and
non-power-of-two way counts, where unbacked leaves must never be
selected.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TLBConfig
from repro.tlb import plru
from repro.tlb.tlb import TLB
from repro.validation.reference import RefTLB, _PLRUTree
from repro.vm.address import PageSize

#: every way count through 16, power-of-two and not, plus degenerate 1
WAYS = st.integers(min_value=1, max_value=16)


def touches(ways: int):
    """Strategy: a sequence of way indices valid for ``ways``."""
    return st.lists(
        st.integers(min_value=0, max_value=ways - 1), max_size=60
    )


@given(WAYS.flatmap(lambda w: st.tuples(st.just(w), touches(w))))
@settings(max_examples=200)
def test_victim_is_always_a_backed_way(case):
    ways, sequence = case
    bits = 0
    for way in sequence:
        bits = plru.touch(bits, ways, way)
        assert 0 <= plru.victim(bits, ways) < ways


@given(WAYS.flatmap(lambda w: st.tuples(st.just(w), touches(w))))
@settings(max_examples=200)
def test_victim_never_equals_the_last_touched_way(case):
    ways, sequence = case
    if ways < 2:
        return  # a 1-way set must evict its only (just-touched) way
    bits = 0
    for way in sequence:
        bits = plru.touch(bits, ways, way)
        assert plru.victim(bits, ways) != way


@given(WAYS.flatmap(lambda w: st.tuples(st.just(w), touches(w))))
@settings(max_examples=200)
def test_touch_is_idempotent(case):
    ways, sequence = case
    bits = 0
    for way in sequence:
        bits = plru.touch(bits, ways, way)
        assert plru.touch(bits, ways, way) == bits


@given(touches(1))
def test_one_way_set_is_degenerate(sequence):
    """No tree exists at 1 way: touch is a no-op, way 0 is the victim."""
    bits = 0
    for way in sequence:
        bits = plru.touch(bits, 1, way)
        assert bits == 0
        assert plru.victim(bits, 1) == 0


@given(WAYS.flatmap(lambda w: st.tuples(st.just(w), touches(w))))
@settings(max_examples=300)
def test_bitmask_matches_the_brute_force_tree(case):
    """Lock-step equivalence: after every touch, both trees nominate
    the same victim."""
    ways, sequence = case
    bits = 0
    model = _PLRUTree(ways)
    for way in sequence:
        bits = plru.touch(bits, ways, way)
        model.touch(way)
        assert plru.victim(bits, ways) == model.victim()


@given(WAYS.flatmap(lambda w: st.tuples(st.just(w), touches(w))))
@settings(max_examples=100)
def test_victim_then_touch_visits_every_way(case):
    """Evicting and refilling repeatedly must rotate through all ways
    (for power-of-two way counts, exactly once per round) — the policy
    can never strand a way unreachable, whatever state touches left."""
    ways, sequence = case
    bits = 0
    for way in sequence:
        bits = plru.touch(bits, ways, way)
    is_pow2 = ways & (ways - 1) == 0
    if is_pow2:
        round_victims = []
        for _ in range(ways):
            victim = plru.victim(bits, ways)
            round_victims.append(victim)
            bits = plru.touch(bits, ways, victim)
        assert sorted(round_victims) == list(range(ways))
    else:
        seen = set()
        for _ in range(4 * ways):
            victim = plru.victim(bits, ways)
            seen.add(victim)
            bits = plru.touch(bits, ways, victim)
        assert seen == set(range(ways))


# ----------------------------------------------------------------------
# full-structure equivalence: production TLB vs reference model


_GEOMETRIES = st.sampled_from(
    [(4, 2), (6, 3), (8, 4), (8, 8), (12, 3), (16, 4), (3, 3), (2, 1)]
)

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["lookup", "fill", "invalidate", "flush"]),
        st.integers(min_value=0, max_value=40),
    ),
    max_size=80,
)


@given(_GEOMETRIES, _OPS)
@settings(max_examples=150)
def test_plru_tlb_matches_reference_model(geometry, ops):
    """Drive the production PLRU TLB and the reference RefTLB with one
    op sequence: victims, hit/miss answers, statistics, and resident
    tags must stay identical throughout."""
    entries, associativity = geometry
    real = TLB(
        TLBConfig(entries, associativity, (PageSize.BASE,),
                  replacement="plru"),
        "prop",
    )
    ref = RefTLB(entries, associativity, "plru", "prop")
    for op, tag in ops:
        if op == "lookup":
            assert real.lookup(tag) == ref.lookup(tag)
        elif op == "fill":
            real_victim = real.fill(tag, PageSize.BASE)
            ref_victim = ref.fill(tag, int(PageSize.BASE))
            assert real_victim == ref_victim
        elif op == "invalidate":
            assert real.invalidate(tag) == ref.invalidate(tag)
        else:
            real.flush()
            ref.flush()
        assert real.resident_tags() == ref.resident_tags()
    assert real.stats.hits == ref.stats.hits
    assert real.stats.misses == ref.stats.misses
    assert real.stats.evictions == ref.stats.evictions
    assert real.stats.invalidations == ref.stats.invalidations


@given(_GEOMETRIES, _OPS)
@settings(max_examples=100)
def test_lru_tlb_matches_reference_model(geometry, ops):
    """The same lock-step run under true LRU: the reference's explicit
    age counters must agree with the dict-order encoding."""
    entries, associativity = geometry
    real = TLB(
        TLBConfig(entries, associativity, (PageSize.BASE,)), "prop"
    )
    ref = RefTLB(entries, associativity, "lru", "prop")
    for op, tag in ops:
        if op == "lookup":
            assert real.lookup(tag) == ref.lookup(tag)
        elif op == "fill":
            assert real.fill(tag, PageSize.BASE) == ref.fill(
                tag, int(PageSize.BASE)
            )
        elif op == "invalidate":
            assert real.invalidate(tag) == ref.invalidate(tag)
        else:
            real.flush()
            ref.flush()
        assert real.resident_tags() == ref.resident_tags()
    assert real.stats.evictions == ref.stats.evictions
