"""Property-based tests for TLB-hierarchy invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TLBConfig, TLBHierarchyConfig
from repro.tlb.hierarchy import HitLevel, TLBHierarchy
from repro.vm.address import PageSize


def make_hierarchy():
    return TLBHierarchy(
        TLBHierarchyConfig(
            l1_base=TLBConfig(4, 2, (PageSize.BASE,)),
            l1_huge=TLBConfig(2, 2, (PageSize.HUGE,)),
            l1_giga=TLBConfig(2, 2, (PageSize.GIGA,)),
            l2=TLBConfig(8, 2, (PageSize.BASE, PageSize.HUGE)),
        )
    )


operations = st.lists(
    st.one_of(
        st.tuples(st.just("lookup"), st.integers(0, 2048)),
        st.tuples(st.just("fill_base"), st.integers(0, 2048)),
        st.tuples(st.just("fill_huge"), st.integers(0, 2048)),
        st.tuples(st.just("shootdown"), st.integers(0, 4)),
    ),
    max_size=200,
)


@given(ops=operations)
@settings(max_examples=120, deadline=None)
def test_capacity_and_shootdown_invariants(ops):
    hierarchy = make_hierarchy()
    for op, value in ops:
        if op == "lookup":
            hierarchy.lookup(value)
        elif op == "fill_base":
            hierarchy.fill(value, PageSize.BASE)
        elif op == "fill_huge":
            hierarchy.fill(value, PageSize.HUGE)
        else:
            hierarchy.shootdown_region(value)
            # after a shootdown, nothing in the region can hit
            span = PageSize.HUGE.base_pages
            probe = value * span + 7
            assert hierarchy.lookup(probe).level is HitLevel.MISS

        assert hierarchy.l1_base.occupancy() <= 4
        assert hierarchy.l1_huge.occupancy() <= 2
        assert hierarchy.l1_giga.occupancy() <= 2
        assert hierarchy.l2.occupancy() <= 8


@given(ops=operations)
@settings(max_examples=80, deadline=None)
def test_fill_then_lookup_hits(ops):
    """Whatever else happened, an immediate lookup after a fill hits
    (nothing evicts between the two calls)."""
    hierarchy = make_hierarchy()
    for op, value in ops:
        if op == "fill_base":
            hierarchy.fill(value, PageSize.BASE)
            assert hierarchy.lookup(value).level is not HitLevel.MISS
        elif op == "fill_huge":
            # fill() takes a VPN; the installed entry covers the VPN's
            # whole 2MB region
            hierarchy.fill(value, PageSize.HUGE)
            same_region = (value >> 9) * PageSize.HUGE.base_pages
            assert hierarchy.lookup(same_region).level is not HitLevel.MISS
        elif op == "lookup":
            hierarchy.lookup(value)
        else:
            hierarchy.shootdown_region(value)


@given(
    vpns=st.lists(st.integers(0, 4096), min_size=1, max_size=300),
)
@settings(max_examples=80, deadline=None)
def test_accesses_partition_into_levels(vpns):
    hierarchy = make_hierarchy()
    hits_l1 = hits_l2 = misses = 0
    for vpn in vpns:
        result = hierarchy.lookup(vpn)
        if result.level is HitLevel.L1:
            hits_l1 += 1
        elif result.level is HitLevel.L2:
            hits_l2 += 1
        else:
            misses += 1
            hierarchy.fill(vpn, PageSize.BASE)
    assert hits_l1 + hits_l2 + misses == len(vpns)
    assert hierarchy.accesses == len(vpns)
