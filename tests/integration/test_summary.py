"""Tests for the reproduction scorecard."""

import pytest

from repro.experiments import summary


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "fig1_motivation.txt").write_text("FIG1 CONTENT\n")
    (directory / "fig7_fragmentation.txt").write_text("FIG7 CONTENT\n")
    return directory


class TestBuild:
    def test_includes_present_sections_in_order(self, results_dir):
        scorecard = summary.build(results_dir)
        assert "FIG1 CONTENT" in scorecard.text
        assert "FIG7 CONTENT" in scorecard.text
        assert scorecard.text.index("FIG1") < scorecard.text.index("FIG7")
        assert scorecard.present == ["fig1_motivation", "fig7_fragmentation"]

    def test_missing_sections_reported(self, results_dir):
        scorecard = summary.build(results_dir)
        assert not scorecard.complete
        assert "fig5_utility" in scorecard.missing
        assert "missing sections" in scorecard.text

    def test_empty_directory(self, tmp_path):
        scorecard = summary.build(tmp_path)
        assert scorecard.present == []
        assert len(scorecard.missing) == len(summary.SECTIONS)

    def test_write_creates_file(self, results_dir, tmp_path):
        out = tmp_path / "out" / "scorecard.txt"
        scorecard = summary.write(out, results_dir)
        assert out.exists()
        assert "FIG1 CONTENT" in out.read_text()
        assert scorecard.present


class TestRealResults:
    def test_builds_against_repository_results(self):
        """The repository's own archived results produce a complete or
        near-complete scorecard (skipped on a fresh checkout where the
        benchmark suite has not run yet)."""
        scorecard = summary.build()
        if not scorecard.present:
            pytest.skip("no archived benchmark results yet")
        assert "PCC reproduction scorecard" in scorecard.text
        assert scorecard.text.count("\n## ") == len(scorecard.present)
