"""The process-pool fan-out must be observationally identical to serial.

``--jobs N`` only changes *where* configurations run, never what they
compute: every spec is deterministic given its parameters, workers
rebuild workloads through the shared trace cache, and the parent
republishes worker metrics. These tests pin all three properties.
"""

import os

import pytest

from repro.engine.simulation import SimulationResult
from repro.experiments.common import (
    ExperimentScale,
    RunSpec,
    build_named_workload,
    config_for,
    execute_spec,
    run_policy,
    run_specs,
)
from repro.experiments.parallel import JOBS_ENV, fan_out, resolve_jobs
from repro.os.kernel import HugePagePolicy

TINY = ExperimentScale(name="t", graph_scale=10, proxy_accesses=20_000)


def _fingerprint(result: SimulationResult) -> tuple:
    return (
        result.policy,
        result.total_cycles,
        result.accesses,
        result.walks,
        result.l1_hits,
        result.l2_hits,
        result.promotions,
        result.demotions,
    )


def _specs() -> list[RunSpec]:
    return [
        RunSpec.for_scale(TINY, app, policy, label=f"{app}/{policy.value}")
        for app in ("BFS", "mcf")
        for policy in (HugePagePolicy.NONE, HugePagePolicy.PCC)
    ]


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(None) == 5

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)


def _square(x: int) -> int:
    return x * x


class TestFanOut:
    def test_serial_path_for_jobs_one(self):
        assert fan_out(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_parallel_preserves_task_order(self):
        tasks = list(range(12))
        assert fan_out(_square, tasks, jobs=3) == [x * x for x in tasks]

    def test_single_task_never_pools(self):
        assert fan_out(_square, [5], jobs=8) == [25]


class TestParallelEquivalence:
    def test_jobs_two_matches_serial(self, tmp_path, monkeypatch):
        """The acceptance property: fan-out changes wall-clock, not stats."""
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        specs = _specs()
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=2)
        assert [_fingerprint(r) for r in parallel] == [
            _fingerprint(r) for r in serial
        ]

    def test_worker_metrics_republished_to_parent(self, tmp_path, monkeypatch):
        """--metrics-out must see every run regardless of --jobs."""
        from repro.metrics import collecting

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        specs = _specs()[:2]
        with collecting() as collector:
            run_specs(specs, jobs=2)
        assert len(collector.runs) == len(specs)


class TestDefensiveCopies:
    def test_simulation_never_mutates_cached_workload(self):
        """Each consumer gets a pristine clone even after a sim ran."""
        from repro.engine.simulation import Simulator

        first = build_named_workload("BFS", graph_scale=10,
                                     proxy_accesses=20_000)
        config = config_for(first)
        Simulator(config, policy=HugePagePolicy.PCC).run([first])
        assert first.pid != -1  # the run bound the workload shell...
        second = build_named_workload("BFS", graph_scale=10,
                                      proxy_accesses=20_000)
        assert second.pid == -1  # ...but the cached instance is untouched

    def test_clones_share_trace_arrays(self):
        """Defensive copies must not duplicate multi-MB address arrays."""
        first = build_named_workload("BFS", graph_scale=10,
                                     proxy_accesses=20_000)
        second = build_named_workload("BFS", graph_scale=10,
                                      proxy_accesses=20_000)
        assert first is not second
        for a, b in zip(first.threads, second.threads):
            assert a.trace.vpns is b.trace.vpns
            assert a.trace.counts is b.trace.counts


class TestExecuteSpec:
    def test_spec_round_trip_matches_direct_run(self):
        spec = RunSpec.for_scale(TINY, "BFS", HugePagePolicy.PCC)
        via_spec = execute_spec(spec)
        workload = build_named_workload(
            "BFS", graph_scale=TINY.graph_scale,
            proxy_accesses=TINY.proxy_accesses,
        )
        direct = run_policy(workload, HugePagePolicy.PCC, config_for(workload))
        assert _fingerprint(via_spec) == _fingerprint(direct)

    def test_zero_budget_runs_baseline(self):
        spec = RunSpec.for_scale(
            TINY, "mcf", HugePagePolicy.PCC, budget_percent=0
        )
        result = execute_spec(spec)
        assert result.policy == HugePagePolicy.NONE.value
        assert result.promotions == 0
