"""End-to-end resilience: the fault matrix and kill-then-resume.

Acceptance properties of the resilience layer:

* every fault in the injection matrix — transient exceptions, worker
  crashes, hung workers, corrupted cache entries, torn publishes —
  yields results **bit-identical** to an uninjected serial run;
* a sweep killed mid-flight and re-run with ``resume=True`` loads every
  committed shard (recomputing zero finished specs) and produces
  identical outputs.
"""

import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.engine.simulation import SimulationResult
from repro.experiments.common import ExperimentScale, RunSpec, run_specs
from repro.os.kernel import HugePagePolicy
from repro.resilience.faults import injecting
from repro.resilience.journal import RunJournal
from repro.resilience.retry import TIMEOUT_ENV
from repro.trace.cache import CACHE_DIR_ENV

TINY = ExperimentScale(name="t", graph_scale=10, proxy_accesses=20_000)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _fingerprint(result: SimulationResult) -> tuple:
    return (
        result.policy,
        result.total_cycles,
        result.accesses,
        result.walks,
        result.l1_hits,
        result.l2_hits,
        result.promotions,
        result.demotions,
    )


def _specs() -> list[RunSpec]:
    return [
        RunSpec.for_scale(TINY, app, policy, label=f"{app}/{policy.value}")
        for app in ("BFS", "mcf")
        for policy in (HugePagePolicy.NONE, HugePagePolicy.PCC)
    ]


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Fingerprints of the uninjected serial run (the ground truth)."""
    cache = tmp_path_factory.mktemp("baseline-cache")
    saved = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(cache)
    try:
        return [_fingerprint(r) for r in run_specs(_specs(), jobs=1)]
    finally:
        if saved is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = saved


class TestFaultMatrix:
    @pytest.mark.parametrize(
        "fault",
        [
            "exc@worker.task",
            "crash@worker.task",
            "exc@workload.build",
            "corrupt@trace.cache.read",
            "corrupt@cache.publish",
        ],
    )
    def test_injected_parallel_run_is_bit_identical(
        self, fault, baseline, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        with injecting(fault, state_dir=tmp_path / "faults"):
            results = run_specs(_specs(), jobs=2)
        assert [_fingerprint(r) for r in results] == baseline

    def test_hung_worker_is_bit_identical_under_timeout(
        self, baseline, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        monkeypatch.setenv(TIMEOUT_ENV, "5")
        with injecting("hang@worker.task=120", state_dir=tmp_path / "faults"):
            results = run_specs(_specs(), jobs=2)
        assert [_fingerprint(r) for r in results] == baseline

    def test_serial_injected_run_is_bit_identical(
        self, baseline, tmp_path, monkeypatch
    ):
        """The serial path heals through the same retry machinery."""
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        with injecting("exc@worker.task", state_dir=tmp_path / "faults"):
            results = run_specs(_specs(), jobs=1)
        assert [_fingerprint(r) for r in results] == baseline

    def test_retry_after_timeout_is_accounted_and_bit_identical(
        self, baseline, tmp_path, monkeypatch
    ):
        """Retry x timeout interaction, end to end.

        ``REPRO_TASK_TIMEOUT`` expires attempt 1 (a worker hung by an
        injected fault); the retry runs clean (faults fire exactly
        once) and must succeed. The published ``FanOutReport`` has to
        show the whole story — a timeout, a retry, and *no*
        quarantined tasks — and the healed results must stay
        bit-identical to the uninjected baseline.
        """
        from repro.metrics import collecting

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        monkeypatch.setenv(TIMEOUT_ENV, "5")
        with injecting("hang@worker.task=120", state_dir=tmp_path / "faults"):
            with collecting() as collector:
                results = run_specs(_specs(), jobs=2)
        assert [_fingerprint(r) for r in results] == baseline
        reports = [
            run["meta"]["report"]
            for run in collector.runs
            if run.get("meta", {}).get("component") == "resilience"
            and run.get("meta", {}).get("report")
        ]
        assert reports, "fan_out published no resilience report"
        report = reports[-1]
        assert report["timeouts"] >= 1
        assert report["retries"] >= 1
        assert report["quarantined"] == []


class TestResumeAfterKill:
    def test_killed_sweep_resumes_without_recomputation(
        self, baseline, tmp_path, monkeypatch
    ):
        journal_dir = tmp_path / "journal"
        cache_dir = tmp_path / "cache"
        script = textwrap.dedent(
            """
            from repro.experiments.common import ExperimentScale, RunSpec, run_specs
            from repro.os.kernel import HugePagePolicy

            TINY = ExperimentScale(name="t", graph_scale=10, proxy_accesses=20_000)
            specs = [
                RunSpec.for_scale(TINY, app, policy, label=f"{app}/{policy.value}")
                for app in ("BFS", "mcf")
                for policy in (HugePagePolicy.NONE, HugePagePolicy.PCC)
            ]
            run_specs(specs, jobs=1)
            """
        )
        env = dict(
            os.environ,
            PYTHONPATH=str(REPO_ROOT / "src"),
            REPRO_JOURNAL=str(journal_dir),
            REPRO_TRACE_CACHE=str(cache_dir),
        )
        victim = subprocess.Popen(
            [sys.executable, "-c", script], env=env, cwd=REPO_ROOT
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if list(journal_dir.glob("*.shard")) or victim.poll() is not None:
                    break
                time.sleep(0.05)
        finally:
            victim.kill()
            victim.wait()

        shards_at_restart = len(list(journal_dir.glob("*.shard")))
        assert shards_at_restart >= 1, "no spec committed before the kill"

        monkeypatch.setenv(CACHE_DIR_ENV, str(cache_dir))
        journal = RunJournal(journal_dir)
        results = run_specs(_specs(), jobs=1, resume=True, journal=journal)
        # zero completed specs recomputed...
        assert journal.stats.resumed == shards_at_restart
        assert journal.stats.commits == len(_specs()) - shards_at_restart
        # ...and outputs identical to an uninterrupted run
        assert [_fingerprint(r) for r in results] == baseline
