"""Smoke tests for the per-figure experiment orchestrators.

Each experiment runs at a miniature scale so the test suite exercises
the full code path (workload build → simulation → rendering) quickly;
the benchmarks run the real scales.
"""

import pytest

from repro.experiments import ablations, fig1, fig2, fig5, fig6, fig7, fig9, tables
from repro.experiments.common import ExperimentScale

TINY = ExperimentScale(name="tiny", graph_scale=10, proxy_accesses=40_000)


class TestFig1:
    def test_runs_and_renders(self):
        rows = fig1.run(TINY, apps=["BFS", "mcf"])
        text = fig1.render(rows)
        assert "BFS" in text and "mcf" in text
        assert rows[0].miss_4k > rows[1].miss_4k  # BFS vs mcf sensitivity


class TestFig2:
    def test_runs_and_renders(self):
        result = fig2.run(TINY)
        text = fig2.render(result)
        assert "hub" in text
        assert sum(result.counts.values()) > 0


class TestFig5:
    def test_single_app_three_budgets(self):
        result = fig5.run(TINY, apps=["BFS"], budgets=(0, 8, 100))
        text = fig5.render(result)
        assert "BFS" in text
        app = result.apps[0]
        assert len(app.pcc.points) == 3
        assert app.ideal >= 1.0


class TestFig6:
    def test_two_sizes(self):
        results = fig6.run(TINY, apps=("BFS",), sizes=(4, 64))
        text = fig6.render(results)
        assert "BFS" in text
        assert len(results[0].speedups) == 2


class TestFig7:
    def test_single_app(self):
        rows = fig7.run(TINY, apps=("BFS",))
        text = fig7.render(rows)
        assert "90%" in text
        means = fig7.geomeans(rows)
        assert set(means) == {"hawkeye", "linux", "pcc", "pcc_demote"}


class TestFig9:
    def test_case_runs(self):
        case = fig9.run_case("BFS", "mcf", TINY, budgets=(8, 100))
        text = fig9.render(case)
        assert "multiprocess" in text
        for series in (case.frequency, case.round_robin):
            assert len(series.speedups) == 2  # two apps
            for speedups in series.speedups.values():
                assert len(speedups) == 2  # two budget points


class TestTables:
    def test_table1(self):
        rows = tables.run_table1(TINY)
        text = tables.render_table1(rows)
        assert "Kronecker".lower() in text.lower()
        assert len(rows) == 3 * 3 + 5

    def test_table2_defaults(self):
        text = tables.render_table2()
        assert "1024 entries" in text
        assert "128 entries, fully associative" in text


class TestAblations:
    def test_replacement(self):
        rows = ablations.run_replacement(TINY, apps=("BFS",), sizes=(8,))
        text = ablations.render_replacement(rows)
        assert "LFU" in text
        assert rows[0].speedup_lfu > 0

    def test_pwc(self):
        rows = ablations.run_pwc(TINY, apps=("BFS",))
        text = ablations.render_pwc(rows)
        assert "PWC" in text
        assert rows[0].refs_per_walk_pwc < rows[0].refs_per_walk_no_pwc

    def test_giant_span_workload(self):
        workload = ablations.giant_span_workload(giga_regions=2, accesses=5000)
        assert workload.footprint_bytes >= 2 << 30
        assert workload.total_accesses <= 5000
