"""Tests for the shared-PCC design alternative (§3.2.2)."""

import copy

import numpy as np
import pytest

from repro.config import PCCConfig, scaled_config, tiny_config
from repro.engine.simulation import Simulator
from repro.engine.system import ProcessWorkload, partition_trace
from repro.experiments.common import memory_for
from repro.os.kernel import HugePagePolicy
from repro.workloads.bfs import bfs_trace
from repro.workloads.graph import kronecker
from tests.conftest import make_workload
from tests.engine.test_simulation import hot_cold_addresses


def multithread_workload(threads=2):
    trace, glayout = bfs_trace(kronecker(scale=11, degree=8))
    parts = partition_trace(trace, threads, glayout.layout)
    return ProcessWorkload.multi_thread(parts, glayout.layout, "bfs-mt")


class TestSharedMode:
    def test_cores_share_one_structure(self):
        config = tiny_config(cores=2).with_(
            pcc=PCCConfig(entries=8, shared=True)
        )
        simulator = Simulator(config, policy=HugePagePolicy.NONE)
        workload = multithread_workload()
        simulator.run([copy.deepcopy(workload)])
        # reconstruct: run() built the cores internally; verify via a
        # fresh manual construction
        from repro.core.pcc import PromotionCandidateCache
        from repro.engine.cpu import Core

        shared = PromotionCandidateCache(config.pcc)
        cores = [Core(config, i, shared_pcc=shared) for i in range(2)]
        assert cores[0].pcc is cores[1].pcc

    def test_multiprocess_rejected(self):
        config = tiny_config(cores=2).with_(
            pcc=PCCConfig(entries=8, shared=True)
        )
        a = make_workload(hot_cold_addresses(repeats=200), name="a")
        b = make_workload(hot_cold_addresses(repeats=200), name="b")
        b.pid = 2
        with pytest.raises(ValueError, match="shared-PCC"):
            Simulator(config, policy=HugePagePolicy.PCC).run([a, b])

    def test_shared_pcc_still_promotes(self):
        workload = multithread_workload()
        config = scaled_config(
            cores=2,
            memory_bytes=memory_for(workload),
            promote_every_accesses=max(
                2_000, workload.total_accesses // 12
            ),
        ).with_(pcc=PCCConfig(entries=32, shared=True))
        result = Simulator(config, policy=HugePagePolicy.PCC).run(
            [copy.deepcopy(workload)]
        )
        assert result.promotions > 0


class TestSharedVsPerCore:
    def test_both_designs_capture_the_hot_set(self):
        """§3.2.2: per-core PCCs suffice because each core's TLB feeds
        its own structure; sharing mostly adds capacity coupling. Both
        designs must reach comparable speedups on a split workload."""
        workload = multithread_workload()
        results = {}
        for shared in (False, True):
            config = scaled_config(
                cores=2,
                memory_bytes=memory_for(workload),
                promote_every_accesses=max(
                    2_000, workload.total_accesses // 12
                ),
            ).with_(pcc=PCCConfig(entries=32, shared=shared))
            baseline = Simulator(config, policy=HugePagePolicy.NONE).run(
                [copy.deepcopy(workload)]
            )
            pcc = Simulator(config, policy=HugePagePolicy.PCC).run(
                [copy.deepcopy(workload)]
            )
            results[shared] = baseline.total_cycles / pcc.total_cycles
        assert results[False] > 1.1
        assert abs(results[True] - results[False]) < 0.25
