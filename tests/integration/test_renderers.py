"""Rendering-path tests for the experiment result objects."""

import pytest

from repro.analysis.utility import UtilityCurve, UtilityPoint
from repro.experiments import fig5, fig9
from repro.experiments.fig1 import Fig1Row, render as render_fig1
from repro.experiments.fig7 import Fig7Row, render as render_fig7


def make_curve(policy, speedups, walks=None):
    walks = walks or [0.3] * len(speedups)
    points = [
        UtilityPoint(
            budget_percent=p,
            budget_regions=p,
            cycles=1000,
            walk_rate=w,
            promotions=0,
            speedup=s,
        )
        for p, s, w in zip((0, 50, 100), speedups, walks)
    ]
    return UtilityCurve("w", policy, points=points)


class TestFig1Render:
    def test_geomean_line(self):
        rows = [
            Fig1Row("BFS", 0.3, 0.01, 0.28, 2.0, 1.0),
            Fig1Row("mcf", 0.02, 0.0, 0.01, 1.08, 1.02),
        ]
        text = render_fig1(rows)
        assert "geomean 2MB speedup" in text
        assert "2.00x" in text


class TestFig5Render:
    def _result(self):
        app = fig5.Fig5App(
            app="BFS",
            pcc=make_curve("pcc", [1.0, 1.5, 1.8]),
            hawkeye=make_curve("hawkeye", [1.0, 1.1, 1.4]),
            linux_50=1.02,
            linux_90=0.99,
            ideal=2.0,
            ideal_walk=0.0,
            linux_50_walk=0.29,
            linux_90_walk=0.3,
        )
        return fig5.Fig5Result(apps=[app])

    def test_with_plots(self):
        text = fig5.render(self._result())
        assert "legend:" in text
        assert "speedup  PCC" in text

    def test_without_plots(self):
        text = fig5.render(self._result(), plots=False)
        assert "legend:" not in text
        assert "PTW%" in text


class TestFig7Render:
    def test_geomean_ratios(self):
        rows = [Fig7Row("BFS", hawkeye=1.1, linux=1.0, pcc=1.3,
                        pcc_demote=1.29)]
        text = render_fig7(rows)
        assert "geomean" in text
        assert "1.30x" in text

    def test_custom_fragmentation_label(self):
        rows = [Fig7Row("BFS", 1.0, 1.0, 1.2, 1.2)]
        text = render_fig7(rows, fragmentation=0.5)
        assert "50%" in text


class TestFig9Internals:
    def test_proc_cycles_unknown_pid(self):
        from repro.engine.simulation import SimulationResult

        result = SimulationResult(
            policy="pcc",
            total_cycles=1,
            per_core=[],
            processes=[],
            accesses=0,
            walks=0,
            l1_hits=0,
            l2_hits=0,
            promotions=0,
            demotions=0,
        )
        with pytest.raises(KeyError):
            fig9._proc_cycles(result, pid=7)
