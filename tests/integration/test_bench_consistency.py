"""Consistency between benchmark modules and the scorecard registry.

Each benchmark publishes its rendering under a stem name; the
scorecard collates those stems. These tests keep the two in sync so a
renamed benchmark cannot silently fall out of the scorecard.
"""

import re
from pathlib import Path

import pytest

from repro.experiments.summary import SECTIONS

BENCH_DIR = Path(__file__).parents[2] / "benchmarks"


def published_stems() -> set[str]:
    stems = set()
    for path in BENCH_DIR.glob("bench_*.py"):
        for match in re.finditer(r"publish\(\s*[\"']([\w\d_]+)[\"']", path.read_text()):
            stems.add(match.group(1))
    return stems


class TestScorecardRegistry:
    def test_every_published_stem_is_registered(self):
        registered = {stem for stem, _ in SECTIONS}
        missing = published_stems() - registered
        assert not missing, f"add to summary.SECTIONS: {sorted(missing)}"

    def test_every_registered_stem_is_published_somewhere(self):
        published = published_stems()
        stale = {stem for stem, _ in SECTIONS} - published
        assert not stale, f"remove from summary.SECTIONS: {sorted(stale)}"

    def test_titles_are_unique(self):
        titles = [title for _, title in SECTIONS]
        assert len(titles) == len(set(titles))


class TestBenchModuleHygiene:
    @pytest.mark.parametrize(
        "path", sorted(BENCH_DIR.glob("bench_*.py")), ids=lambda p: p.stem
    )
    def test_bench_has_docstring_and_assertions(self, path):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), path.name
        # every benchmark asserts its figure's shape, not just runtime
        assert "assert" in source, path.name

    def test_every_figure_of_the_paper_has_a_bench(self):
        names = {path.stem for path in BENCH_DIR.glob("bench_*.py")}
        for required in (
            "bench_fig1_motivation",
            "bench_fig2_reuse",
            "bench_fig5_utility",
            "bench_fig6_pcc_size",
            "bench_fig7_fragmentation",
            "bench_fig8_multithread",
            "bench_fig9_multiprocess",
            "bench_table1_workloads",
        ):
            assert required in names, required
