"""Smoke tests for the sensitivity-study experiment module."""

from repro.experiments import sensitivity
from repro.experiments.common import ExperimentScale

TINY = ExperimentScale(name="tiny", graph_scale=10, proxy_accesses=30_000)


class TestCounterBits:
    def test_sweep_shape(self):
        result = sensitivity.counter_bits_sweep(TINY, bits=(4, 8))
        assert result.values == [4, 8]
        assert all(s > 0 for s in result.speedups)
        text = sensitivity.render_sweep(result)
        assert "counter_bits" in text


class TestInterval:
    def test_more_intervals_not_worse(self):
        result = sensitivity.interval_sweep(TINY, divisors=(4, 48))
        assert result.speedups[1] >= result.speedups[0] - 0.03


class TestAdmissionFilter:
    def test_both_variants_run(self):
        result = sensitivity.admission_filter_study(TINY)
        assert set(result) == {"with_filter", "without_filter"}
        assert all(v > 0.8 for v in result.values())

    def test_walker_restored_after_study(self):
        import repro.tlb.walker as walker_module

        before = walker_module.PageTableWalker.walk
        sensitivity.admission_filter_study(TINY)
        assert walker_module.PageTableWalker.walk is before
