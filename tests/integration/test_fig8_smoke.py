"""Smoke test for the Fig. 8 multithread experiment orchestrator."""

from repro.experiments import fig8
from repro.experiments.common import ExperimentScale

TINY = ExperimentScale(name="tiny", graph_scale=10, proxy_accesses=20_000)


class TestFig8Smoke:
    def test_single_app_two_threads(self):
        cells = fig8.run(TINY, apps=("BFS",), thread_counts=(2,))
        assert len(cells) == 1
        cell = cells[0]
        assert cell.app == "BFS"
        assert cell.threads == 2
        assert cell.speedup_frequency > 0.8
        assert cell.speedup_round_robin > 0.8
        assert cell.ideal >= max(
            cell.speedup_frequency, cell.speedup_round_robin
        ) - 0.1

    def test_render(self):
        cells = fig8.run(TINY, apps=("BFS",), thread_counts=(2,))
        text = fig8.render(cells)
        assert "Threads" in text
        assert "BFS" in text

    def test_threaded_workload_partitions_accesses(self):
        workload = fig8._threaded_workload("BFS", TINY, threads=4)
        assert len(workload.threads) == 4
        totals = [t.trace.total_accesses for t in workload.threads]
        assert sum(totals) == workload.total_accesses
        # partitioning is roughly even
        assert max(totals) < 2 * max(1, min(totals) + 1)
