"""Tests for the shared experiment scaffolding."""

import pytest

from repro.experiments.common import (
    FULL,
    QUICK,
    ExperimentScale,
    build_named_workload,
    config_for,
    demotion_params,
    memory_for,
)


class TestScales:
    def test_presets(self):
        assert QUICK.graph_scale < FULL.graph_scale
        assert QUICK.proxy_accesses < FULL.proxy_accesses

    def test_workload_builder_dispatch(self):
        tiny = ExperimentScale(name="t", graph_scale=9, proxy_accesses=10_000)
        graph = tiny.workload("BFS")
        proxy = tiny.workload("mcf")
        assert graph.total_accesses > 0
        assert proxy.total_accesses >= 9_000


class TestCaching:
    def test_same_params_cached_but_isolated(self):
        tiny = ExperimentScale(name="t", graph_scale=9, proxy_accesses=10_000)
        first = tiny.workload("BFS")
        second = tiny.workload("BFS")
        # deep copies: mutating one must not leak into the next build
        first.pid = 42
        assert second.pid == -1
        assert first.total_accesses == second.total_accesses

    def test_build_named_workload_distinct_datasets(self):
        a = build_named_workload("BFS", dataset="kronecker", graph_scale=9)
        b = build_named_workload("BFS", dataset="social", graph_scale=9)
        assert a.total_accesses != b.total_accesses


class TestSizing:
    def test_memory_floor(self):
        tiny = ExperimentScale(name="t", graph_scale=8, proxy_accesses=5_000)
        workload = tiny.workload("BFS")
        assert memory_for(workload) >= 8 << 21

    def test_memory_scales_with_regions(self):
        # scale 12 puts both footprints above the sizing floor
        tiny = ExperimentScale(name="t", graph_scale=12, proxy_accesses=5_000)
        small = tiny.workload("BFS")
        big = tiny.workload("SSSP")  # ~2x footprint
        assert memory_for(big) > memory_for(small)
        assert memory_for(small, big) > memory_for(big)

    def test_config_interval_adapts(self):
        tiny = ExperimentScale(name="t", graph_scale=9, proxy_accesses=5_000)
        workload = tiny.workload("BFS")
        config = config_for(workload)
        expected = min(60_000, max(5_000, workload.total_accesses // 24))
        assert config.os.promote_every_accesses == expected

    def test_config_interval_override_respected(self):
        tiny = ExperimentScale(name="t", graph_scale=9, proxy_accesses=5_000)
        workload = tiny.workload("BFS")
        config = config_for(workload, promote_every_accesses=1234)
        assert config.os.promote_every_accesses == 1234


class TestParams:
    def test_demotion_params(self):
        tiny = ExperimentScale(name="t", graph_scale=9, proxy_accesses=5_000)
        config = config_for(tiny.workload("BFS"))
        params = demotion_params(config, budget_regions=7)
        assert params.demotion_enabled
        assert params.promotion_budget_regions == 7
        assert params.regions_to_promote == config.os.regions_to_promote
