"""The quickstart example's exact flow, as a fast regression test.

Examples are living documentation; this test pins the quickstart's
qualitative claims at a miniature scale so a regression that would
make the README's first demo lie is caught in the unit suite.
"""

import copy

import pytest

from repro.engine.simulation import Simulator
from repro.experiments.common import config_for
from repro.os.kernel import HugePagePolicy
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def results():
    workload = build_workload("BFS", dataset="kronecker", scale=11)
    config = config_for(workload)
    out = {}
    for label, (policy, frag) in {
        "baseline": (HugePagePolicy.NONE, 0.0),
        "linux": (HugePagePolicy.LINUX_THP, 0.5),
        "pcc": (HugePagePolicy.PCC, 0.5),
        "ideal": (HugePagePolicy.IDEAL, 0.0),
    }.items():
        simulator = Simulator(config, policy=policy, fragmentation=frag)
        out[label] = simulator.run([copy.deepcopy(workload)])
    return out


class TestQuickstartClaims:
    def test_ideal_is_the_upper_bound(self, results):
        assert results["ideal"].total_cycles == min(
            r.total_cycles for r in results.values()
        )

    def test_pcc_recovers_most_of_ideal_under_fragmentation(self, results):
        base = results["baseline"].total_cycles
        pcc_gain = base / results["pcc"].total_cycles - 1
        ideal_gain = base / results["ideal"].total_cycles - 1
        assert pcc_gain > 0.5 * ideal_gain

    def test_linux_thp_stuck_near_baseline(self, results):
        base = results["baseline"].total_cycles
        assert base / results["linux"].total_cycles < 1.15

    def test_pcc_promotes_only_a_subset(self, results):
        promoted = sum(p.huge_pages for p in results["pcc"].processes)
        all_regions = sum(
            p.footprint_regions for p in results["ideal"].processes
        )
        assert 0 < promoted <= all_regions
