"""Scaling-regime tests: the paper-faithful config behaves sanely too.

Benchmarks run the scaled machine; these tests exercise the
Table-2-faithful ``paper_config()`` against appropriately larger inputs
to confirm the behaviour carries across the scaling — the same code
path the FULL preset and any user-supplied configuration take.
"""

import copy

import pytest

from repro.config import paper_config
from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy, KernelParams
from repro.workloads.bfs import bfs_workload
from repro.workloads.graph import kronecker


@pytest.fixture(scope="module")
def setup():
    # scale 14 against the full 1024-entry L2: still TLB-hostile
    # because the property gathers span ~4x the paper-config reach
    from dataclasses import replace

    workload = bfs_workload(kronecker(scale=14, degree=12))
    config = paper_config().with_(
        memory_bytes=workload.footprint_huge_regions() * (2 << 20) * 2,
    )
    config = config.with_(
        os=replace(
            config.os,
            promote_every_accesses=max(
                10_000, workload.total_accesses // 16
            ),
        )
    )
    return workload, config


class TestPaperConfigRegime:
    def test_baseline_still_misses(self, setup):
        workload, config = setup
        result = Simulator(config, policy=HugePagePolicy.NONE).run(
            [copy.deepcopy(workload)]
        )
        assert result.walk_rate > 0.02

    def test_pcc_helps_under_paper_config(self, setup):
        workload, config = setup
        baseline = Simulator(config, policy=HugePagePolicy.NONE).run(
            [copy.deepcopy(workload)]
        )
        pcc = Simulator(config, policy=HugePagePolicy.PCC).run(
            [copy.deepcopy(workload)]
        )
        assert pcc.walks < baseline.walks
        assert pcc.total_cycles < baseline.total_cycles

    def test_paper_pcc_capacity_is_ample_here(self, setup):
        """With a 128-entry PCC and a ~60-region footprint, every hot
        region can be tracked simultaneously (the paper's 'sufficiently
        large to capture the HUBs' regime)."""
        workload, config = setup
        simulator = Simulator(config, policy=HugePagePolicy.PCC)
        simulator.run([copy.deepcopy(workload)])
        stats = simulator.kernel._engine.stats
        assert stats.promotions > 0
        assert workload.footprint_huge_regions() < config.pcc.entries
