"""Integration tests: the paper's qualitative results on small inputs.

These assert the *shapes* the reproduction must preserve — orderings
between policies, plateaus, and the HUB phenomenon — on miniature
workloads so the suite stays fast.
"""

import copy

import pytest

from repro.config import scaled_config
from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy, KernelParams
from repro.workloads.bfs import bfs_workload
from repro.workloads.graph import kronecker


@pytest.fixture(scope="module")
def workload():
    return bfs_workload(kronecker(scale=11, degree=8))


@pytest.fixture(scope="module")
def config(workload):
    from repro.experiments.common import memory_for

    # interval scaled to the miniature trace so several promotion
    # ticks fire (the paper's runs span many 30s intervals)
    return scaled_config(
        memory_bytes=memory_for(workload),
        promote_every_accesses=workload.total_accesses // 12,
    )


def run(workload, config, policy, frag=0.0, params=None):
    simulator = Simulator(config, policy=policy, params=params, fragmentation=frag)
    return simulator.run([copy.deepcopy(workload)])


@pytest.fixture(scope="module")
def results(workload, config):
    return {
        "baseline": run(workload, config, HugePagePolicy.NONE),
        "ideal": run(workload, config, HugePagePolicy.IDEAL),
        "pcc": run(workload, config, HugePagePolicy.PCC),
        "pcc@90": run(workload, config, HugePagePolicy.PCC, frag=0.9),
        "linux@90": run(workload, config, HugePagePolicy.LINUX_THP, frag=0.9),
        "hawkeye@90": run(workload, config, HugePagePolicy.HAWKEYE, frag=0.9),
    }


class TestFig1Shapes:
    def test_graph_baseline_is_tlb_hostile(self, results):
        """Fig. 1: graph workloads hit double-digit TLB miss rates."""
        assert results["baseline"].walk_rate > 0.10

    def test_huge_pages_give_meaningful_speedup(self, results):
        speedup = (
            results["baseline"].total_cycles / results["ideal"].total_cycles
        )
        assert 1.2 < speedup < 3.5

    def test_ideal_nearly_eliminates_walks(self, results):
        assert results["ideal"].walk_rate < 0.02


class TestFig5Shapes:
    def test_pcc_recovers_most_of_ideal(self, results):
        base = results["baseline"].total_cycles
        pcc_gain = base / results["pcc"].total_cycles - 1.0
        ideal_gain = base / results["ideal"].total_cycles - 1.0
        assert pcc_gain > 0.5 * ideal_gain

    def test_pcc_reduces_walk_rate(self, results):
        assert results["pcc"].walk_rate < 0.5 * results["baseline"].walk_rate


class TestFig7Shapes:
    def test_pcc_beats_linux_under_heavy_fragmentation(self, results):
        assert results["pcc@90"].total_cycles < results["linux@90"].total_cycles

    def test_pcc_beats_hawkeye_under_heavy_fragmentation(self, results):
        assert results["pcc@90"].total_cycles < results["hawkeye@90"].total_cycles

    def test_linux_thp_near_baseline_when_fragmented(self, results):
        """Fig. 1/7: greedy THP rarely beats 4KB pages under pressure."""
        ratio = results["baseline"].total_cycles / results["linux@90"].total_cycles
        assert ratio < 1.1

    def test_fragmented_pcc_still_beats_baseline(self, results):
        assert results["pcc@90"].total_cycles < results["baseline"].total_cycles


class TestHeadlineClaim:
    def test_small_budget_achieves_most_of_peak(self, workload, config):
        """§1: promoting a few percent of the footprint yields the bulk
        of the achievable speedup."""
        total = workload.footprint_huge_regions()
        budget = max(2, int(round(total * 0.10)))
        params = KernelParams(
            regions_to_promote=config.os.regions_to_promote,
            promotion_budget_regions=budget,
        )
        baseline = run(workload, config, HugePagePolicy.NONE)
        limited = run(workload, config, HugePagePolicy.PCC, params=params)
        ideal = run(workload, config, HugePagePolicy.IDEAL)
        limited_gain = baseline.total_cycles / limited.total_cycles - 1.0
        ideal_gain = baseline.total_cycles / ideal.total_cycles - 1.0
        assert limited_gain > 0.5 * ideal_gain
        assert limited.promotions <= budget


class TestDumpInvariants:
    def test_promotions_match_page_table_state(self, workload, config):
        simulator = Simulator(config, policy=HugePagePolicy.PCC)
        result = simulator.run([copy.deepcopy(workload)])
        table = simulator.kernel.processes[1].page_table
        assert result.promotions == len(table.promoted_regions())

    def test_timelines_consistent(self, results):
        result = results["pcc"]
        assert sum(n for _, n in result.promotion_timeline) == result.promotions
        assert len(result.huge_page_timeline) == len(result.promotion_timeline)
