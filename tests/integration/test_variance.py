"""Seed-variance study: conclusions are not artifacts of one seed.

Runs the headline comparison (PCC vs baseline under fragmentation) on
three seeds of the same workload family and asserts the qualitative
result holds for every one — the reproduction's equivalent of the
paper's repeated-measurement methodology (geomean of 3 executions).
"""

import copy

import pytest

from repro.config import scaled_config
from repro.engine.simulation import Simulator
from repro.experiments.common import memory_for
from repro.os.kernel import HugePagePolicy
from repro.workloads.registry import build_workload

SEEDS = (7, 23, 101)


@pytest.fixture(scope="module")
def runs():
    results = {}
    for seed in SEEDS:
        workload = build_workload("BFS", scale=11, seed=seed)
        config = scaled_config(
            memory_bytes=memory_for(workload),
            promote_every_accesses=max(2_000, workload.total_accesses // 12),
        )
        baseline = Simulator(
            config, policy=HugePagePolicy.NONE, fragmentation=0.9
        ).run([copy.deepcopy(workload)])
        pcc = Simulator(
            config, policy=HugePagePolicy.PCC, fragmentation=0.9
        ).run([copy.deepcopy(workload)])
        results[seed] = (baseline, pcc)
    return results


class TestSeedRobustness:
    def test_distinct_seeds_give_distinct_workloads(self, runs):
        walk_rates = {
            round(baseline.walk_rate, 6) for baseline, _ in runs.values()
        }
        assert len(walk_rates) == len(SEEDS)

    def test_pcc_wins_on_every_seed(self, runs):
        for seed, (baseline, pcc) in runs.items():
            assert pcc.total_cycles < baseline.total_cycles, seed
            assert pcc.walk_rate < baseline.walk_rate, seed

    def test_variance_is_moderate(self, runs):
        """The speedups across seeds agree within a loose band — the
        effect is a property of the workload family, not one instance."""
        speedups = [
            baseline.total_cycles / pcc.total_cycles
            for baseline, pcc in runs.values()
        ]
        assert max(speedups) / min(speedups) < 1.5

    def test_proxy_seed_plumbs_through(self):
        a = build_workload("canneal", accesses=5_000, seed=1)
        b = build_workload("canneal", accesses=5_000, seed=2)
        import numpy as np

        assert not np.array_equal(
            a.threads[0].trace.vpns, b.threads[0].trace.vpns
        )
