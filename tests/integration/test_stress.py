"""Stress and pathological-input tests for the full pipeline."""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.engine.simulation import Simulator
from repro.os.kernel import HugePagePolicy
from tests.conftest import make_workload


class TestPathologicalTraces:
    def test_single_page_hammer(self, config):
        addresses = np.full(5000, 0x5555_5540_0000, dtype=np.uint64)
        result = Simulator(config, policy=HugePagePolicy.PCC).run(
            [make_workload(addresses)]
        )
        assert result.walks == 1  # one cold miss, everything else L1
        assert result.promotions == 0  # nothing worth promoting

    def test_pure_stream_never_promoted_under_min_frequency(self, config):
        """A strictly-ascending one-touch stream has frequency-0
        candidates only; the engine's gate refuses them all."""
        addresses = (
            np.uint64(0x5555_5540_0000)
            + np.arange(4000, dtype=np.uint64) * np.uint64(4096)
        )
        simulator = Simulator(config, policy=HugePagePolicy.PCC)
        result = simulator.run([make_workload(addresses)])
        # every page is touched exactly once: no region accumulates hits
        # beyond its per-region cold stream of walks; promotions are
        # possible (streams do walk repeatedly within a region) but the
        # run must complete with consistent accounting
        assert result.accesses == 4000
        assert result.walks == 4000  # every access a new page

    def test_giga_spanning_sparse_trace(self, config):
        """Addresses scattered over 100+ GB of VA stress tag widths."""
        rng = np.random.default_rng(5)
        addresses = (
            rng.integers(0, 100 << 30, size=3000, dtype=np.uint64)
            // np.uint64(4096)
            * np.uint64(4096)
        ) + np.uint64(0x1000_0000_0000)
        result = Simulator(config, policy=HugePagePolicy.NONE).run(
            [make_workload(addresses)]
        )
        assert result.accesses == 3000
        assert result.walk_rate > 0.9  # nothing can cache this

    def test_alternating_two_pages_in_one_region(self, config):
        base = 0x5555_5540_0000
        addresses = np.empty(2000, dtype=np.uint64)
        addresses[0::2] = base
        addresses[1::2] = base + 4096
        result = Simulator(config, policy=HugePagePolicy.NONE).run(
            [make_workload(addresses)]
        )
        # both pages fit in the tiny L1: two cold walks only
        assert result.walks == 2

    def test_highest_canonical_addresses(self, config):
        """Addresses near the 48-bit boundary must not overflow tags."""
        top = (1 << 48) - (64 << 20)
        addresses = (
            np.uint64(top)
            + np.arange(100, dtype=np.uint64) * np.uint64(4096)
        )
        result = Simulator(config, policy=HugePagePolicy.NONE).run(
            [make_workload(addresses)]
        )
        assert result.accesses == 100


class TestManyProcessesStress:
    def test_four_processes_share_the_machine(self):
        config = tiny_config(cores=4)
        rng = np.random.default_rng(9)
        workloads = []
        for pid in range(1, 5):
            addresses = (
                np.uint64(0x5555_5540_0000)
                + rng.integers(0, 64, size=800, dtype=np.uint64)
                * np.uint64(4096)
            )
            workload = make_workload(addresses, name=f"p{pid}")
            workload.pid = pid
            workloads.append(workload)
        result = Simulator(config, policy=HugePagePolicy.PCC).run(workloads)
        assert len(result.processes) == 4
        assert result.accesses == 4 * 800
        assert len(result.per_core) == 4
