"""End-to-end runs of the extension workloads through the registry."""

import copy

import pytest

from repro.config import PCCConfig, scaled_config
from repro.engine.simulation import Simulator
from repro.experiments.common import memory_for
from repro.os.kernel import HugePagePolicy, KernelParams
from repro.workloads.registry import build_workload


class TestPhasedEndToEnd:
    def test_demotion_beats_promotion_only(self):
        workload = build_workload("phased", accesses=120_000)
        config = scaled_config(
            memory_bytes=memory_for(workload),
            promote_every_accesses=workload.total_accesses // 20,
        )

        def run(demote):
            params = KernelParams(
                regions_to_promote=8, demotion_enabled=demote
            )
            simulator = Simulator(
                config,
                policy=HugePagePolicy.PCC,
                params=params,
                fragmentation=0.85,
            )
            return simulator.run([copy.deepcopy(workload)])

        promote_only = run(demote=False)
        with_demotion = run(demote=True)
        assert with_demotion.total_cycles <= promote_only.total_cycles
        assert with_demotion.demotions > 0


class TestGiantSpanEndToEnd:
    def test_giga_pcc_pays_off(self):
        workload = build_workload("giant-span", accesses=80_000)
        config = scaled_config(memory_bytes=4 << 30).with_(
            pcc=PCCConfig(entries=32, giga_entries=8, giga_enabled=True)
        )
        baseline = Simulator(config, policy=HugePagePolicy.NONE).run(
            [copy.deepcopy(workload)]
        )
        simulator = Simulator(config, policy=HugePagePolicy.PCC)
        pcc = simulator.run([copy.deepcopy(workload)])
        assert simulator.kernel._engine.stats.giga_promotions >= 1
        assert pcc.total_cycles < baseline.total_cycles
