"""Documentation consistency: what the docs promise must exist."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parents[2]


class TestReadme:
    def test_required_files_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/ARCHITECTURE.md", "docs/FAQ.md", "Makefile"):
            assert (ROOT / name).exists(), name

    def test_readme_examples_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.finditer(r"`examples/(\w+\.py)`", readme):
            assert (ROOT / "examples" / match.group(1)).exists(), match.group(1)

    def test_readme_benchmark_paths_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", readme):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(1)

    def test_readme_cli_subcommands_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        subcommands = set()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                subcommands |= set(action.choices)
        readme = (ROOT / "README.md").read_text()
        for match in re.finditer(r"python -m repro (\w+)", readme):
            assert match.group(1) in subcommands, match.group(1)


class TestDesignDoc:
    def test_design_module_references_exist(self):
        """Every `repro.x.y` module path DESIGN.md names must import."""
        import importlib

        design = (ROOT / "DESIGN.md").read_text()
        for match in set(re.finditer(r"`repro\.([\w.]+)`", design)):
            module_path = "repro." + match.group(1)
            try:
                importlib.import_module(module_path)
            except ImportError:
                # allow attribute references like repro.core.pcc.PCC
                parent, _, _ = module_path.rpartition(".")
                importlib.import_module(parent)

    def test_design_bench_references_exist(self):
        design = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), (
                match.group(1)
            )


class TestExperimentsDoc:
    def test_experiments_bench_references_exist(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for match in re.finditer(r"\((bench_\w+\.py)\)", text):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), (
                match.group(1)
            )
