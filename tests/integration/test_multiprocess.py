"""Integration tests: multithread/multiprocess behaviour and bias."""

import copy

import pytest

from repro.config import scaled_config
from repro.engine.simulation import Simulator
from repro.engine.system import ProcessWorkload, partition_trace
from repro.os.kernel import HugePagePolicy, KernelParams
from repro.workloads.bfs import bfs_trace, bfs_workload
from repro.workloads.graph import kronecker
from repro.workloads.parsec_spec import proxy_workload


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=11, degree=8)


def config_for_workloads(*workloads, cores=2, **kw):
    from repro.experiments.common import memory_for

    total = sum(w.total_accesses for w in workloads)
    return scaled_config(
        memory_bytes=memory_for(*workloads),
        promote_every_accesses=max(2_000, total // 12),
        cores=cores,
        **kw,
    )


class TestMultithread:
    def test_threads_share_page_table_promotions(self, graph):
        trace, glayout = bfs_trace(graph)
        parts = partition_trace(trace, 2, glayout.layout)
        workload = ProcessWorkload.multi_thread(parts, glayout.layout, "bfs-mt")
        config = config_for_workloads(workload, cores=2)
        simulator = Simulator(config, policy=HugePagePolicy.PCC)
        result = simulator.run([copy.deepcopy(workload)])
        # one shared address space: promotions land in one page table
        assert len(simulator.kernel.processes) == 1
        assert result.promotions > 0

    def test_multithread_beats_baseline(self, graph):
        trace, glayout = bfs_trace(graph)
        parts = partition_trace(trace, 2, glayout.layout)
        workload = ProcessWorkload.multi_thread(parts, glayout.layout, "bfs-mt")
        config = config_for_workloads(workload, cores=2)
        baseline = Simulator(config, policy=HugePagePolicy.NONE).run(
            [copy.deepcopy(workload)]
        )
        pcc = Simulator(config, policy=HugePagePolicy.PCC).run(
            [copy.deepcopy(workload)]
        )
        assert pcc.total_cycles < baseline.total_cycles


class TestProcessBias:
    """§3.3.2's promotion_bias_process kernel parameter."""

    def _pair(self, graph):
        a = bfs_workload(graph)
        b = proxy_workload("canneal", accesses=40_000)
        a.pid, b.pid = 1, 2
        return a, b

    def _run_with_bias(self, graph, biased):
        a, b = self._pair(graph)
        config = config_for_workloads(a, b, cores=2)
        params = KernelParams(
            regions_to_promote=2,
            promotion_bias_processes=biased,
            promotion_budget_regions=4,
        )
        simulator = Simulator(config, policy=HugePagePolicy.PCC, params=params)
        simulator.run([copy.deepcopy(a), copy.deepcopy(b)])
        return (
            simulator.kernel.huge_pages_of(1),
            simulator.kernel.huge_pages_of(2),
        )

    def test_bias_steers_scarce_budget(self, graph):
        pid1_hp, _ = self._run_with_bias(graph, biased=(1,))
        _, pid2_hp = self._run_with_bias(graph, biased=(2,))
        # whichever process is biased receives the limited promotions
        assert pid1_hp >= 3
        assert pid2_hp >= 3

    def test_unbiased_split_differs_from_biased(self, graph):
        biased_pid1, _ = self._run_with_bias(graph, biased=(1,))
        pid1_neutral, pid2_neutral = self._run_with_bias(graph, biased=())
        assert biased_pid1 >= pid1_neutral


class TestMultiprocessIsolation:
    def test_same_virtual_addresses_do_not_collide(self, graph):
        """Both processes use identical VA layouts; promotions in one
        address space must not affect the other's page table."""
        a = bfs_workload(graph)
        b = bfs_workload(graph)
        a.pid, b.pid = 1, 2
        config = config_for_workloads(a, b, cores=2)
        params = KernelParams(
            regions_to_promote=4, promotion_bias_processes=(1,),
            promotion_budget_regions=3,
        )
        simulator = Simulator(config, policy=HugePagePolicy.PCC, params=params)
        simulator.run([copy.deepcopy(a), copy.deepcopy(b)])
        table_a = simulator.kernel.processes[1].page_table
        table_b = simulator.kernel.processes[2].page_table
        assert table_a.promoted_regions()
        # pid 2 faulted the same VAs but its table holds its own state
        assert table_b.mapped_base_page_count() > 0
