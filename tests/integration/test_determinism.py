"""Full-stack determinism: identical inputs give identical outputs.

The paper controls run-to-run variance with numactl pinning and
ASLR-off; the simulator must be perfectly deterministic — any hidden
randomness (dict ordering abuse, unseeded RNG, id()-keyed structures)
would make figures unreproducible.
"""

import pytest

from repro.experiments import fig1, fig2, fig7
from repro.experiments.common import ExperimentScale, _cached_workload

TINY = ExperimentScale(name="tiny", graph_scale=10, proxy_accesses=25_000)


def reset_caches():
    _cached_workload.cache_clear()


class TestExperimentDeterminism:
    def test_fig1_rows_identical_across_runs(self):
        first = fig1.run(TINY, apps=["BFS", "mcf"])
        reset_caches()
        second = fig1.run(TINY, apps=["BFS", "mcf"])
        assert first == second

    def test_fig2_counts_identical_across_runs(self):
        first = fig2.run(TINY)
        second = fig2.run(TINY)
        assert first.counts == second.counts
        assert first.hub_region_count == second.hub_region_count

    def test_fig7_speedups_identical_across_runs(self):
        first = fig7.run(TINY, apps=("BFS",))
        reset_caches()
        second = fig7.run(TINY, apps=("BFS",))
        assert first == second

    def test_renders_are_byte_identical(self):
        rows = fig1.run(TINY, apps=["BFS"])
        assert fig1.render(rows) == fig1.render(rows)
