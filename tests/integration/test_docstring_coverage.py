"""Docstring coverage: every public item carries documentation."""

import importlib
import inspect

import pytest

MODULES = [
    "repro.config",
    "repro.vm.address",
    "repro.vm.layout",
    "repro.vm.pagetable",
    "repro.trace.events",
    "repro.trace.recorder",
    "repro.trace.io",
    "repro.trace.cache",
    "repro.trace.synthesis",
    "repro.tlb.tlb",
    "repro.tlb.hierarchy",
    "repro.tlb.walker",
    "repro.core.pcc",
    "repro.core.dump",
    "repro.os.physmem",
    "repro.os.thp",
    "repro.os.hawkeye",
    "repro.os.promotion",
    "repro.os.policies",
    "repro.os.kernel",
    "repro.os.oracle",
    "repro.engine.cpu",
    "repro.engine.timing",
    "repro.engine.simulation",
    "repro.engine.system",
    "repro.engine.offline",
    "repro.engine.schedule_io",
    "repro.workloads.graph",
    "repro.workloads.gapbase",
    "repro.workloads.bfs",
    "repro.workloads.phased",
    "repro.analysis.reuse",
    "repro.analysis.utility",
    "repro.analysis.plot",
    "repro.analysis.aggregate",
    "repro.analysis.diagnostics",
    "repro.analysis.tracestats",
    "repro.virt.tagged_pcc",
    "repro.virt.hypervisor",
    "repro.experiments.summary",
    "repro.experiments.parallel",
    "repro.obs.tracer",
    "repro.obs.histo",
    "repro.obs.observer",
    "repro.obs.runid",
    "repro.obs.log",
    "repro.obs.inspect",
    "repro.resilience.bus",
    "repro.resilience.faults",
    "repro.resilience.journal",
    "repro.resilience.retry",
]


def public_items(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere
        yield name, obj


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = [
        name for name, obj in public_items(module) if not inspect.getdoc(obj)
    ]
    assert not undocumented, f"{module_name}: {undocumented}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_methods_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for class_name, cls in public_items(module):
        if not inspect.isclass(cls):
            continue
        for method_name, method in vars(cls).items():
            if method_name.startswith("_"):
                continue
            if not callable(method) and not isinstance(
                method, (property, staticmethod, classmethod)
            ):
                continue
            target = (
                method.fget if isinstance(method, property) else method
            )
            if target is None or not callable(
                getattr(target, "__func__", target)
            ):
                continue
            if not inspect.getdoc(target):
                undocumented.append(f"{class_name}.{method_name}")
    assert not undocumented, f"{module_name}: {undocumented}"