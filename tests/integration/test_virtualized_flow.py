"""End-to-end §5.4.3 scenario: PCC-guided co-promotion across worlds.

Two guests run TLB-hostile workloads; their per-core tagged PCCs rank
guest regions, each guest OS promotes its top candidates, and the
hypercall path asks the host for matching huge frames. Host contiguity
is scarce, so the guests compete — and effective page sizes only
become huge where both worlds cooperated.
"""

import pytest

from repro.config import PCCConfig
from repro.os.physmem import PhysicalMemory
from repro.vm.address import HUGE_PAGE_SIZE, PageSize
from repro.vm.pagetable import PageTable
from repro.virt import Hypervisor, TaggedPCC, World


@pytest.fixture
def setup():
    host_memory = PhysicalMemory(6 * HUGE_PAGE_SIZE)
    hypervisor = Hypervisor(host_memory)
    hypervisor.register_vm(1)
    hypervisor.register_vm(2)
    pcc = TaggedPCC(PCCConfig(entries=16))
    tables = {1: PageTable(pid=1), 2: PageTable(pid=2)}
    return hypervisor, pcc, tables


def feed_guest_walks(pcc, vm_id, region_heat: dict[int, int]):
    """Record walks: region -> walk count."""
    for region, count in region_heat.items():
        for _ in range(count):
            pcc.access(World.GUEST, vm_id, region)


def guest_promote(table, region):
    base = region << 21
    if not table.mapped_pages_in_region(region):
        table.map_base(base, frame=0)
    table.promote(region, frame=region)
    return True


class TestCoPromotionScenario:
    def test_hot_guests_share_scarce_host_frames(self, setup):
        hypervisor, pcc, tables = setup
        feed_guest_walks(pcc, 1, {10: 30, 11: 5})
        feed_guest_walks(pcc, 2, {20: 25, 21: 2})

        outcomes = {}
        for vm_id in (1, 2):
            ranked = pcc.ranked(World.GUEST, vm_id=vm_id)
            top = ranked[0]
            outcome = hypervisor.co_promote(
                vm_id,
                gpa_region=top.tag,
                guest_promote=lambda vm=vm_id, r=top.tag: guest_promote(
                    tables[vm], r
                ),
            )
            outcomes[vm_id] = (top.tag, outcome)

        for vm_id, (region, outcome) in outcomes.items():
            assert outcome.effective_page_size is PageSize.HUGE
            assert tables[vm_id].is_promoted(region)
            assert hypervisor.host_page_size(vm_id, region) is PageSize.HUGE

    def test_host_exhaustion_degrades_latecomer(self, setup):
        hypervisor, pcc, tables = setup
        # vm 1 greedily co-promotes 6 regions, exhausting the host
        for region in range(10, 16):
            hypervisor.co_promote(
                1, region,
                guest_promote=lambda r=region: guest_promote(tables[1], r),
            )
        outcome = hypervisor.co_promote(
            2, 20, guest_promote=lambda: guest_promote(tables[2], 20)
        )
        # guest side succeeded, host could not follow: effectively base
        assert outcome.guest_promoted
        assert outcome.effective_page_size is PageSize.BASE
        assert hypervisor.stats.host_promotion_failures >= 1

    def test_ranking_guides_promotion_order(self, setup):
        hypervisor, pcc, tables = setup
        feed_guest_walks(pcc, 1, {5: 3, 6: 50, 7: 10})
        ranked = [e.tag for e in pcc.ranked(World.GUEST, vm_id=1)]
        assert ranked == [6, 7, 5]
