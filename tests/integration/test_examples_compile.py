"""The example scripts must at least parse and expose a main()."""

import ast
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parents[2] / "examples").glob("*.py")
)


def test_seven_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "fragmentation_study",
        "hub_characterization",
        "multiprocess_fairness",
        "giga_pages",
        "utility_curves",
        "offline_two_step",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    functions = {
        node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions, path.name
    # every example is runnable as a script
    assert "__main__" in path.read_text()


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_has_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), path.name
