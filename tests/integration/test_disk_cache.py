"""Tests for the opt-in on-disk workload trace cache."""

import pytest

from repro.experiments.common import (
    _cached_workload,
    clone_workload,
    config_for,
    ensure_workload_cached,
    run_policy,
)
from repro.os.kernel import HugePagePolicy
from repro.trace.cache import TRACE_GENERATOR_VERSION, cache_key


@pytest.fixture
def disk_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    _cached_workload.cache_clear()
    yield tmp_path
    _cached_workload.cache_clear()


class TestDiskCache:
    ARGS = ("BFS", "kronecker", 10, 20_000, False, None)

    def test_disabled_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        _cached_workload.cache_clear()
        _cached_workload(*self.ARGS)
        assert not list(tmp_path.rglob("*.npy"))
        _cached_workload.cache_clear()

    def test_disabled_when_env_off(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        _cached_workload.cache_clear()
        _cached_workload(*self.ARGS)
        assert not list(tmp_path.rglob("*.npy"))
        _cached_workload.cache_clear()

    def test_populates_on_first_build(self, disk_cache):
        _cached_workload(*self.ARGS)
        assert list(disk_cache.glob("*.meta.json"))
        assert list(disk_cache.glob("*.npy"))

    def test_reload_is_behaviourally_identical(self, disk_cache):
        first = _cached_workload(*self.ARGS)
        _cached_workload.cache_clear()
        second = _cached_workload(*self.ARGS)
        assert first.total_accesses == second.total_accesses
        assert first.footprint_huge_regions() == second.footprint_huge_regions()
        config = config_for(first)
        a = run_policy(clone_workload(first), HugePagePolicy.NONE, config)
        b = run_policy(clone_workload(second), HugePagePolicy.NONE, config)
        assert a.walks == b.walks
        assert a.total_cycles == b.total_cycles

    def test_cache_is_generator_version_scoped(self, disk_cache):
        _cached_workload(*self.ARGS)
        keys = {p.name.split(".")[0] for p in disk_cache.glob("*.meta.json")}
        # The generator version is baked into every key: the same
        # parameters under a bumped generator hash to a fresh entry.
        app, dataset, scale, accesses, sorted_dbg, seed = self.ARGS
        params = {
            "dataset": dataset,
            "scale": scale,
            "accesses": accesses,
            "sorted_dbg": sorted_dbg,
            "seed": seed,
        }
        current = cache_key(app, params, TRACE_GENERATOR_VERSION)
        bumped = cache_key(app, params, TRACE_GENERATOR_VERSION + 1)
        assert current in keys
        assert bumped not in keys
        assert current != bumped

    def test_ensure_workload_cached_prewarms(self, disk_cache):
        app, dataset, scale, accesses, sorted_dbg, seed = self.ARGS
        ensure_workload_cached(
            app,
            dataset=dataset,
            graph_scale=scale,
            proxy_accesses=accesses,
            sorted_dbg=sorted_dbg,
            seed=seed,
        )
        assert list(disk_cache.glob("*.meta.json"))
        # Idempotent: a second call does not duplicate entries.
        before = sorted(p.name for p in disk_cache.iterdir())
        ensure_workload_cached(
            app,
            dataset=dataset,
            graph_scale=scale,
            proxy_accesses=accesses,
            sorted_dbg=sorted_dbg,
            seed=seed,
        )
        assert sorted(p.name for p in disk_cache.iterdir()) == before
