"""Tests for the opt-in on-disk workload trace cache."""

import copy

import pytest

from repro.experiments.common import _cached_workload, config_for, run_policy
from repro.os.kernel import HugePagePolicy


@pytest.fixture
def disk_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    _cached_workload.cache_clear()
    yield tmp_path
    _cached_workload.cache_clear()


class TestDiskCache:
    ARGS = ("BFS", "kronecker", 10, 20_000, False)

    def test_disabled_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        _cached_workload.cache_clear()
        _cached_workload(*self.ARGS)
        assert not list(tmp_path.rglob("*.npz"))
        _cached_workload.cache_clear()

    def test_populates_on_first_build(self, disk_cache):
        _cached_workload(*self.ARGS)
        assert list(disk_cache.rglob("*.npz"))

    def test_reload_is_behaviourally_identical(self, disk_cache):
        first = _cached_workload(*self.ARGS)
        _cached_workload.cache_clear()
        second = _cached_workload(*self.ARGS)
        assert first.total_accesses == second.total_accesses
        assert first.footprint_huge_regions() == second.footprint_huge_regions()
        config = config_for(first)
        a = run_policy(copy.deepcopy(first), HugePagePolicy.NONE, config)
        b = run_policy(copy.deepcopy(second), HugePagePolicy.NONE, config)
        assert a.walks == b.walks
        assert a.total_cycles == b.total_cycles

    def test_cache_is_version_scoped(self, disk_cache):
        import repro

        _cached_workload(*self.ARGS)
        assert (disk_cache / repro.__version__).exists()
