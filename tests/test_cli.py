"""Tests for the command-line interface."""

import pytest

from repro import cli


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_scale_option(self):
        args = cli.build_parser().parse_args(["--scale", "full", "fig2"])
        assert args.scale == "full"
        assert args.experiment == "fig2"

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["--scale", "huge", "fig2"])

    def test_helpers(self):
        assert cli._split("a, b,") == ["a", "b"]
        assert cli._split(None) is None
        assert cli._int_tuple("1,2", (9,)) == (1, 2)
        assert cli._int_tuple(None, (9,)) == (9,)

    def test_resume_flag(self):
        assert cli.build_parser().parse_args(["--resume", "fig6"]).resume
        assert not cli.build_parser().parse_args(["fig6"]).resume


class TestResumeWiring:
    def test_main_defaults_the_journal_env(self, monkeypatch):
        """A CLI run journals by default so --resume works after a kill."""
        import os

        from repro.resilience.journal import JOURNAL_ENV, default_journal_dir

        monkeypatch.delenv(JOURNAL_ENV, raising=False)
        monkeypatch.setattr(cli, "_dispatch", lambda args, scale: 0)
        assert cli.main(["fig2"]) == 0
        assert os.environ[JOURNAL_ENV] == str(default_journal_dir())

    def test_explicit_journal_env_wins(self, monkeypatch):
        import os

        from repro.resilience.journal import JOURNAL_ENV

        monkeypatch.setenv(JOURNAL_ENV, "off")
        monkeypatch.setattr(cli, "_dispatch", lambda args, scale: 0)
        assert cli.main(["fig2"]) == 0
        assert os.environ[JOURNAL_ENV] == "off"

    def test_resume_reaches_the_sweep(self, monkeypatch):
        """--resume is threaded through dispatch into the figure runner."""
        seen = {}

        def fake_run(scale, jobs=None, resume=False):
            seen["resume"] = resume
            return []

        from repro.experiments import fig6

        monkeypatch.setattr(fig6, "run", fake_run)
        monkeypatch.setattr(fig6, "render", lambda rows: "ok")
        assert cli.main(["--resume", "fig6"]) == 0
        assert seen["resume"] is True


class TestExecution:
    """End-to-end CLI runs at miniature scale via monkeypatched QUICK."""

    @pytest.fixture(autouse=True)
    def tiny_quick(self, monkeypatch):
        from repro.experiments.common import ExperimentScale

        tiny = ExperimentScale(name="tiny", graph_scale=9, proxy_accesses=20_000)
        monkeypatch.setattr(cli, "_scale_of", lambda name: tiny)

    def test_compare(self, capsys):
        assert cli.main(["compare", "--app", "BFS"]) == 0
        out = capsys.readouterr().out
        assert "4KB baseline" in out
        assert "PCC" in out

    def test_metrics_out_writes_aggregate(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        assert cli.main(
            ["--metrics-out", str(path), "compare", "--app", "BFS"]
        ) == 0
        assert "metrics: 5 runs" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.metrics/v1"
        # compare sweeps five policies -> five runs, one export each
        assert len(doc["runs"]) == 5
        policies = [run["meta"]["policy"] for run in doc["runs"]]
        assert policies[0] == "none" and "pcc" in policies
        for run in doc["runs"]:
            assert run["schema"] == "repro.metrics/v1"
            assert "core0.tlb.L1-4K.hits" in run["counters"]

    def test_fig1_subset(self, capsys):
        assert cli.main(["fig1", "--apps", "mcf"]) == 0
        assert "mcf" in capsys.readouterr().out

    def test_fig5_subset(self, capsys):
        assert cli.main(["fig5", "--apps", "BFS", "--budgets", "0,100"]) == 0
        assert "BFS" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert cli.main(["fig7", "--apps", "BFS"]) == 0
        assert "fragmented" in capsys.readouterr().out

    def test_fig9_bad_pair(self):
        with pytest.raises(SystemExit, match="exactly two"):
            cli.main(["fig9", "--pair", "PR"])

    def test_table1(self, capsys):
        assert cli.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out

    def test_stats(self, capsys):
        assert cli.main(["stats", "--app", "mcf"]) == 0
        out = capsys.readouterr().out
        assert "accesses" in out
        assert "VMA" in out

    def test_record_and_replay(self, capsys, tmp_path):
        schedule_path = str(tmp_path / "sched.jsonl")
        assert cli.main(["record", "--app", "BFS", "--out", schedule_path]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out
        assert cli.main(
            ["replay", "--app", "BFS", "--schedule", schedule_path]
        ) == 0
        out = capsys.readouterr().out
        assert "promotions" in out
        assert "speedup" in out

    def test_replay_under_fragmentation(self, capsys, tmp_path):
        schedule_path = str(tmp_path / "sched.jsonl")
        cli.main(["record", "--app", "BFS", "--out", schedule_path])
        capsys.readouterr()
        assert cli.main(
            ["replay", "--app", "BFS", "--schedule", schedule_path,
             "--fragmentation", "0.9"]
        ) == 0
        assert "TLB miss" in capsys.readouterr().out

    def test_scorecard(self, capsys):
        assert cli.main(["scorecard"]) == 0
        out = capsys.readouterr().out
        assert "PCC reproduction scorecard" in out
